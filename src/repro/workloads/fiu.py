"""FIU workload presets (paper Table II).

The three traces the paper replays — collected by FIU's SyLab from a
file server (Homes), two web servers (Web-vm) and an email server
(Mail) — are characterized in Table II; Fig 2 additionally uses a
Webmail trace.  Each preset below fixes the synthetic generator's knobs
to those measured characteristics:

=========  ===========  ============  ==============
Trace      Write ratio  Dedup. ratio  Avg. req. size
=========  ===========  ============  ==============
Mail       69.8 %       89.3 %        14.8 KB
Homes      80.5 %       30.0 %        13.1 KB
Web-vm     78.5 %       49.3 %        40.8 KB
Webmail*   78.0 %       55.0 %        12.0 KB
=========  ===========  ============  ==============

``*`` Webmail is not in Table II; its knobs are estimates from the FIU
IODedup trace family (moderate dedup, write-heavy), used only for the
Fig 2 motivation experiment.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.config import SSDConfig
from repro.workloads.synth import TraceSpec, generate_trace
from repro.workloads.trace import Trace

#: Pages per 4 KB — converts Table II KB sizes to page counts.
_KB_PER_PAGE = 4.0

MAIL = TraceSpec(
    name="mail",
    write_ratio=0.698,
    dedup_ratio=0.893,
    avg_req_pages=14.8 / _KB_PER_PAGE,
    seed=101,
)

HOMES = TraceSpec(
    name="homes",
    write_ratio=0.805,
    dedup_ratio=0.300,
    avg_req_pages=13.1 / _KB_PER_PAGE,
    seed=102,
)

WEB_VM = TraceSpec(
    name="web-vm",
    write_ratio=0.785,
    dedup_ratio=0.493,
    avg_req_pages=40.8 / _KB_PER_PAGE,
    seed=103,
)

WEBMAIL = TraceSpec(
    name="webmail",
    write_ratio=0.780,
    dedup_ratio=0.550,
    avg_req_pages=12.0 / _KB_PER_PAGE,
    seed=104,
)

FIU_PRESETS: Dict[str, TraceSpec] = {
    "mail": MAIL,
    "homes": HOMES,
    "web-vm": WEB_VM,
    "webmail": WEBMAIL,
}


def build_fiu_trace(
    preset: str,
    config: SSDConfig,
    n_requests: int = 100_000,
    fill_factor: float = 3.0,
    lpn_utilization: float = 0.84,
    pool_fraction: float = 0.05,
    mean_interarrival_us: Optional[float] = None,
    seed: Optional[int] = None,
) -> Trace:
    """Instantiate an FIU preset sized to a device configuration.

    ``lpn_utilization`` bounds the addressed LPN span to a fraction of
    the device's logical capacity (a nearly-full drive, the regime where
    GC dominates).  ``fill_factor`` scales ``n_requests`` so total write
    traffic is roughly ``fill_factor`` times physical capacity, forcing
    sustained GC churn; pass ``n_requests`` explicitly to override.

    ``mean_interarrival_us`` defaults to a rate that keeps the device
    moderately loaded (so GC stalls visibly queue requests without
    saturating the device).
    """
    try:
        base = FIU_PRESETS[preset]
    except KeyError:
        raise ValueError(
            f"unknown FIU preset {preset!r}; choose from {sorted(FIU_PRESETS)}"
        ) from None
    lpn_space = max(int(config.logical_pages * lpn_utilization), base.max_req_pages)
    if n_requests <= 0:
        write_pages_target = config.geometry.total_pages * fill_factor
        n_requests = max(
            int(write_pages_target / (base.write_ratio * base.avg_req_pages)), 100
        )
    if mean_interarrival_us is None:
        # Arrival rate scaled to the workload's write intensity: ~250 us
        # of inter-arrival budget per expected written page keeps the
        # device moderately loaded (stable queue) while GC bursts still
        # visibly stall the foreground — the regime of Figs 11-12.
        mean_interarrival_us = 250.0 * base.write_ratio * base.avg_req_pages
    # The popular-content pool scales with the working set so the live
    # unique-content footprint is a stable fraction of the device across
    # scales (it controls how small dedup can shrink the live data).
    popular_pool = max(128, int(lpn_space * pool_fraction))
    spec = base.with_overrides(
        lpn_space=lpn_space,
        n_requests=n_requests,
        popular_pool=popular_pool,
        mean_interarrival_us=mean_interarrival_us,
        seed=seed if seed is not None else base.seed,
    )
    return generate_trace(spec)
