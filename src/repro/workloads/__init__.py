"""Workloads: request/trace containers, synthetic FIU-like generation."""

from repro.workloads.request import IORequest, OpKind
from repro.workloads.trace import Trace, TraceStats
from repro.workloads.synth import TraceSpec, generate_trace
from repro.workloads.fiu import (
    FIU_PRESETS,
    MAIL,
    HOMES,
    WEB_VM,
    WEBMAIL,
    build_fiu_trace,
)
from repro.workloads.filemodel import FileStore, FileModelTrace
from repro.workloads.multiplex import (
    MultiplexedTrace,
    TenantPlacement,
    demultiplex_lpns,
    multiplex_traces,
    tenant_layout,
)

__all__ = [
    "IORequest",
    "OpKind",
    "Trace",
    "TraceStats",
    "TraceSpec",
    "generate_trace",
    "FIU_PRESETS",
    "MAIL",
    "HOMES",
    "WEB_VM",
    "WEBMAIL",
    "build_fiu_trace",
    "FileStore",
    "FileModelTrace",
    "MultiplexedTrace",
    "TenantPlacement",
    "demultiplex_lpns",
    "multiplex_traces",
    "tenant_layout",
]
