"""File-level workload model (paper Figs 1, 7, 8).

The paper motivates dedup with files sharing content pages: Fig 1's four
files over seven unique pages, Fig 8's worked example of writing four
files and deleting two.  :class:`FileStore` models that layer: files are
named sequences of content pages; writing a file emits page writes,
deleting a file emits TRIMs for its pages.  A :class:`FileModelTrace`
collects the operations as a replayable :class:`Trace`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.dedup.fingerprint import Fingerprint, fingerprint_bytes
from repro.workloads.request import IORequest, OpKind
from repro.workloads.trace import Trace

#: Content may be given as raw bytes (hashed) or as an opaque label
#: (string/int) mapped to a stable synthetic fingerprint.
ContentPage = Union[bytes, str, int]


def _to_fingerprint(page: ContentPage) -> Fingerprint:
    if isinstance(page, bytes):
        return fingerprint_bytes(page)
    if isinstance(page, str):
        return fingerprint_bytes(page.encode("utf-8"))
    if isinstance(page, int):
        return page
    raise TypeError(f"unsupported content page type: {type(page)!r}")


class FileStore:
    """Files as extents of logical pages, with content fingerprints.

    LPNs are allocated append-only from a simple bump allocator —
    adequate for the worked examples where the interesting behaviour
    happens below, in the FTL.
    """

    def __init__(self, start_time_us: float = 0.0, op_gap_us: float = 1.0) -> None:
        self._files: Dict[str, Tuple[int, int]] = {}  # name -> (lpn, npages)
        self._next_lpn = 0
        self._ops: List[IORequest] = []
        self._now = start_time_us
        self._gap = op_gap_us

    # -- operations --------------------------------------------------------------

    def write_file(self, name: str, pages: Sequence[ContentPage]) -> IORequest:
        """Write (or overwrite) ``name`` with the given content pages."""
        if not pages:
            raise ValueError("a file needs at least one page")
        if name in self._files:
            self.delete_file(name)
        fps = tuple(_to_fingerprint(p) for p in pages)
        lpn = self._next_lpn
        self._next_lpn += len(fps)
        req = IORequest(
            time_us=self._tick(), op=OpKind.WRITE, lpn=lpn, npages=len(fps), fingerprints=fps
        )
        self._files[name] = (lpn, len(fps))
        self._ops.append(req)
        return req

    def delete_file(self, name: str) -> IORequest:
        """Delete ``name``: TRIM its extent (drops page references)."""
        try:
            lpn, npages = self._files.pop(name)
        except KeyError:
            raise KeyError(f"no such file: {name!r}") from None
        req = IORequest(time_us=self._tick(), op=OpKind.TRIM, lpn=lpn, npages=npages)
        self._ops.append(req)
        return req

    def read_file(self, name: str) -> IORequest:
        lpn, npages = self._files[name]
        req = IORequest(time_us=self._tick(), op=OpKind.READ, lpn=lpn, npages=npages)
        self._ops.append(req)
        return req

    def _tick(self) -> float:
        t = self._now
        self._now += self._gap
        return t

    # -- introspection ------------------------------------------------------------

    @property
    def files(self) -> Dict[str, Tuple[int, int]]:
        return dict(self._files)

    def logical_pages_in_use(self) -> int:
        return sum(npages for _, npages in self._files.values())

    def unique_contents(self) -> int:
        """Distinct fingerprints across live files (Fig 1's 'Data Pages')."""
        fps: set = set()
        for name, (lpn, npages) in self._files.items():
            for req in reversed(self._ops):
                if req.op == OpKind.WRITE and req.lpn == lpn and req.npages == npages:
                    fps.update(req.fingerprints or ())
                    break
        return len(fps)


class FileModelTrace:
    """Builder turning file operations into a replayable :class:`Trace`."""

    def __init__(self, op_gap_us: float = 1.0) -> None:
        self.store = FileStore(op_gap_us=op_gap_us)

    def write_file(self, name: str, pages: Sequence[ContentPage]) -> "FileModelTrace":
        self.store.write_file(name, pages)
        return self

    def delete_file(self, name: str) -> "FileModelTrace":
        self.store.delete_file(name)
        return self

    def read_file(self, name: str) -> "FileModelTrace":
        self.store.read_file(name)
        return self

    def build(self, name: str = "filemodel") -> Trace:
        return Trace.from_requests(self.store._ops, name=name)
