"""Workload analysis: the characteristics that drive GC and dedup.

Computes, for any :class:`Trace`, the quantities the paper's evaluation
implicitly depends on: working-set size, overwrite (update) intensity,
content popularity skew, and per-content sharing — the inputs a reader
needs to judge whether a synthetic trace exercises the same mechanisms
as the original.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.workloads.request import OpKind
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class WorkloadProfile:
    """Derived characteristics of one trace."""

    working_set_pages: int
    written_pages: int
    #: mean number of times a written LPN is (re)written.
    mean_overwrites: float
    #: fraction of page writes that hit an already-written LPN.
    update_fraction: float
    #: unique content count across all written pages.
    unique_contents: int
    #: share of written pages carried by the 1% most popular contents.
    top1pct_content_share: float
    #: mean sharers per live content at end of trace (refcount proxy).
    mean_final_refcount: float


def _written_lpn_counts(trace: Trace) -> Counter:
    counts: Counter = Counter()
    write = int(OpKind.WRITE)
    for _, op, lpn, npages, _ in trace.iter_rows():
        if op == write:
            for offset in range(npages):
                counts[lpn + offset] += 1
    return counts


def content_popularity(trace: Trace) -> np.ndarray:
    """Occurrence counts per unique content, descending."""
    if len(trace.fps_flat) == 0:
        return np.empty(0, dtype=np.int64)
    _, counts = np.unique(trace.fps_flat, return_counts=True)
    return np.sort(counts)[::-1]


def final_content_refcounts(trace: Trace) -> Dict[int, int]:
    """Sharers per content after the trace fully replays.

    Applies write/trim semantics to an LPN -> content map and counts,
    for each content still live, how many LPNs reference it — the
    refcount distribution CAGC's placement exploits.
    """
    lpn_content: Dict[int, int] = {}
    write = int(OpKind.WRITE)
    trim = int(OpKind.TRIM)
    for _, op, lpn, npages, fps in trace.iter_rows():
        if op == write:
            for offset in range(npages):
                lpn_content[lpn + offset] = int(fps[offset])
        elif op == trim:
            for offset in range(npages):
                lpn_content.pop(lpn + offset, None)
    refcounts: Counter = Counter(lpn_content.values())
    return dict(refcounts)


def profile_trace(trace: Trace) -> WorkloadProfile:
    """Compute the full :class:`WorkloadProfile` for a trace."""
    lpn_counts = _written_lpn_counts(trace)
    written_pages = sum(lpn_counts.values())
    working_set = len(lpn_counts)
    updates = written_pages - working_set
    popularity = content_popularity(trace)
    if popularity.size:
        top_n = max(1, int(np.ceil(popularity.size * 0.01)))
        top_share = float(popularity[:top_n].sum() / popularity.sum())
    else:
        top_share = 0.0
    refcounts = final_content_refcounts(trace)
    mean_ref = (
        float(np.mean(list(refcounts.values()))) if refcounts else 0.0
    )
    return WorkloadProfile(
        working_set_pages=working_set,
        written_pages=written_pages,
        mean_overwrites=written_pages / working_set if working_set else 0.0,
        update_fraction=updates / written_pages if written_pages else 0.0,
        unique_contents=int(popularity.size),
        top1pct_content_share=top_share,
        mean_final_refcount=mean_ref,
    )


def refcount_histogram(trace: Trace, buckets: Tuple[int, ...] = (1, 2, 3)) -> List[Tuple[str, float]]:
    """Fraction of live contents at each refcount (last bucket is >max).

    The static analogue of Fig 6's dynamic invalidation histogram.
    """
    refcounts = final_content_refcounts(trace)
    total = len(refcounts)
    if total == 0:
        return [(str(b), 0.0) for b in buckets] + [(f">{buckets[-1]}", 0.0)]
    values = np.array(list(refcounts.values()))
    rows: List[Tuple[str, float]] = []
    for bucket in buckets:
        rows.append((str(bucket), float((values == bucket).mean())))
    rows.append((f">{buckets[-1]}", float((values > buckets[-1]).mean())))
    return rows
