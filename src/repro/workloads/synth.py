"""Synthetic FIU-like trace generator.

The FIU SyLab content traces (Homes, Web-vm, Mail) the paper replays are
not redistributable, so experiments run on synthetic traces whose
first-order characteristics match Table II:

* **write ratio** — fraction of requests that are writes;
* **dedup ratio** — fraction of written pages whose content duplicates
  earlier content (controlled by a popular-content pool with a Zipf
  popularity law, the empirical shape of the FIU traces);
* **mean request size** — geometric page-count distribution;
* **spatial locality** — hot/cold LPN split (default 80 % of accesses to
  20 % of the logical space), which gives flash blocks the skewed
  invalidation profile real GC studies rely on;
* **reference-count skew** — falls out of the Zipf content model: most
  content is written once (refcount 1, dies on overwrite), a small pool
  is shared widely (high refcount, essentially immortal) — reproducing
  the paper's Fig 6 distribution.

Generation is fully vectorized with NumPy and deterministic per seed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.workloads.request import OpKind
from repro.workloads.trace import Trace

#: Unique (non-pool) content ids start here so the two populations never
#: collide; pool ids occupy [0, popular_pool).
_UNIQUE_FP_BASE = 1 << 40


@dataclass(frozen=True)
class TraceSpec:
    """Parameters of one synthetic workload."""

    name: str = "synthetic"
    n_requests: int = 100_000
    write_ratio: float = 0.7
    dedup_ratio: float = 0.5
    avg_req_pages: float = 4.0
    max_req_pages: int = 64
    #: logical page span addressed by the trace; callers size it to the
    #: device (see :func:`repro.workloads.fiu.build_fiu_trace`).
    lpn_space: int = 100_000
    #: hot/cold spatial skew: ``hot_prob`` of accesses land in the first
    #: ``hot_frac`` of the LPN space.
    hot_frac: float = 0.2
    hot_prob: float = 0.8
    #: size of the popular-content pool duplicate pages draw from.
    #: Callers sizing traces to a device should scale this with the
    #: working set (see fiu.build_fiu_trace); the default suits short
    #: standalone traces.
    popular_pool: int = 1_024
    #: Zipf exponent of pool popularity (1.0 ~ classic Zipf).
    zipf_s: float = 1.0
    #: mean exponential inter-arrival time in microseconds.
    mean_interarrival_us: float = 100.0
    #: fraction of requests that are TRIMs (file deletions at block level).
    trim_ratio: float = 0.0
    seed: int = 42

    def validate(self) -> None:
        if self.n_requests <= 0:
            raise ValueError("n_requests must be positive")
        if not 0.0 <= self.write_ratio <= 1.0:
            raise ValueError("write_ratio must be in [0, 1]")
        if not 0.0 <= self.dedup_ratio <= 1.0:
            raise ValueError("dedup_ratio must be in [0, 1]")
        if not 0.0 <= self.trim_ratio <= 1.0 - self.write_ratio + 1e-12:
            raise ValueError("trim_ratio must fit in the non-write fraction")
        if self.avg_req_pages < 1.0:
            raise ValueError("avg_req_pages must be >= 1")
        if self.max_req_pages < 1:
            raise ValueError("max_req_pages must be >= 1")
        if self.lpn_space < self.max_req_pages:
            raise ValueError("lpn_space smaller than the largest request")
        if not 0.0 < self.hot_frac < 1.0:
            raise ValueError("hot_frac must be in (0, 1)")
        if not 0.0 <= self.hot_prob <= 1.0:
            raise ValueError("hot_prob must be in [0, 1]")
        if self.popular_pool < 1:
            raise ValueError("popular_pool must be >= 1")
        if self.mean_interarrival_us <= 0:
            raise ValueError("mean_interarrival_us must be positive")

    def with_overrides(self, **kwargs: object) -> "TraceSpec":
        spec = replace(self, **kwargs)  # type: ignore[arg-type]
        spec.validate()
        return spec


def _zipf_weights(pool: int, s: float) -> np.ndarray:
    ranks = np.arange(1, pool + 1, dtype=np.float64)
    weights = ranks ** (-s)
    return weights / weights.sum()


def _sample_sizes(rng: np.random.Generator, spec: TraceSpec, n: int) -> np.ndarray:
    """Geometric request sizes with the spec's mean, clipped to max."""
    if spec.avg_req_pages <= 1.0:
        return np.ones(n, dtype=np.int32)
    p = 1.0 / spec.avg_req_pages
    sizes = rng.geometric(p, size=n)
    return np.clip(sizes, 1, spec.max_req_pages).astype(np.int32)


def _sample_lpns(
    rng: np.random.Generator, spec: TraceSpec, sizes: np.ndarray
) -> np.ndarray:
    """Start LPNs with hot/cold skew; each extent fits its zone."""
    n = len(sizes)
    hot_pages = max(int(spec.lpn_space * spec.hot_frac), spec.max_req_pages)
    cold_base = hot_pages
    cold_pages = max(spec.lpn_space - hot_pages, spec.max_req_pages)
    in_hot = rng.random(n) < spec.hot_prob
    u = rng.random(n)
    hot_span = np.maximum(hot_pages - sizes, 1)
    cold_span = np.maximum(cold_pages - sizes, 1)
    lpns = np.where(
        in_hot,
        (u * hot_span).astype(np.int64),
        cold_base + (u * cold_span).astype(np.int64),
    )
    return np.minimum(lpns, spec.lpn_space - sizes).astype(np.int64)


def generate_trace(spec: TraceSpec, rng: Optional[np.random.Generator] = None) -> Trace:
    """Generate a synthetic trace matching ``spec``.

    Deterministic for a given ``spec.seed`` unless an explicit ``rng`` is
    supplied.
    """
    spec.validate()
    if rng is None:
        rng = np.random.default_rng(spec.seed)
    n = spec.n_requests

    # Opcodes: write / trim / read, in one categorical draw.
    u = rng.random(n)
    ops = np.full(n, int(OpKind.READ), dtype=np.uint8)
    ops[u < spec.write_ratio] = int(OpKind.WRITE)
    trim_band = spec.write_ratio + spec.trim_ratio
    ops[(u >= spec.write_ratio) & (u < trim_band)] = int(OpKind.TRIM)

    sizes = _sample_sizes(rng, spec, n)
    lpns = _sample_lpns(rng, spec, sizes)
    times = np.cumsum(rng.exponential(spec.mean_interarrival_us, size=n))

    # Per-page content for writes: duplicate pages draw a pool id with
    # Zipf popularity, unique pages take fresh ids.
    is_write = ops == int(OpKind.WRITE)
    write_pages = int(sizes[is_write].sum())
    dup_mask = rng.random(write_pages) < spec.dedup_ratio
    n_dup = int(dup_mask.sum())
    fps = np.empty(write_pages, dtype=np.int64)
    if n_dup:
        weights = _zipf_weights(spec.popular_pool, spec.zipf_s)
        fps[dup_mask] = rng.choice(spec.popular_pool, size=n_dup, p=weights)
    n_unique = write_pages - n_dup
    fps[~dup_mask] = _UNIQUE_FP_BASE + np.arange(n_unique, dtype=np.int64)

    # Offsets: cumulative page counts over write requests only.
    offsets = np.zeros(n + 1, dtype=np.int64)
    offsets[1:] = np.cumsum(np.where(is_write, sizes, 0))

    return Trace(times, ops, lpns, sizes, fps, offsets, name=spec.name)
