"""User I/O request model.

Requests are page-granular, like the FIU content traces the paper
replays: every request covers ``npages`` consecutive 4 KB logical pages
starting at ``lpn``, and write requests carry one content fingerprint
per page (the trace-embedded hash that enables dedup studies).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple


class OpKind(enum.IntEnum):
    """Request opcodes (integer-valued for compact array storage)."""

    READ = 0
    WRITE = 1
    TRIM = 2


@dataclass(frozen=True)
class IORequest:
    """One user I/O: arrival time, op, page extent, per-page fingerprints."""

    time_us: float
    op: OpKind
    lpn: int
    npages: int
    #: one fingerprint per page for WRITE, ``None`` otherwise.
    fingerprints: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.npages <= 0:
            raise ValueError("npages must be positive")
        if self.op == OpKind.WRITE:
            if self.fingerprints is None or len(self.fingerprints) != self.npages:
                raise ValueError("WRITE requires one fingerprint per page")
        elif self.fingerprints is not None:
            raise ValueError(f"{self.op.name} carries no fingerprints")

    @property
    def lpns(self) -> range:
        return range(self.lpn, self.lpn + self.npages)

    @property
    def bytes(self) -> int:
        return self.npages * 4096
