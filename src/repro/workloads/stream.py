"""Streaming trace access: constant-memory replay of on-disk traces.

Production FIU traces run to tens of millions of records; materializing
one as in-memory columns costs GBs and dwarfs the simulator state.
This module is the dispatch layer that keeps replay memory flat:

* :func:`open_trace` — one entry point for every on-disk format.  With
  ``stream=True`` it returns a trace object whose iteration touches at
  most one chunk of requests at a time: FIU text and CSV parse lazily
  (:class:`StreamingTrace`), npz archives come back as memory-mapped
  column views the OS pages in and out on demand.
* :class:`StreamingTrace` — wraps a restartable chunk iterator in the
  replay-facing trace protocol (``iter_rows`` / ``iter_requests`` /
  ``name``), so :meth:`repro.device.ssd.SSD.replay` consumes it exactly
  like a materialized :class:`~repro.workloads.trace.Trace`.

The replay loop itself was already single-pass; with these sources its
peak RSS is set by the device geometry, not the trace length (the
constant-memory assertion in ``tests/test_trace_stream.py`` pins this).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Callable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.workloads.fiu_format import iter_fiu_chunks, load_fiu_trace
from repro.workloads.request import IORequest, OpKind
from repro.workloads.trace import Trace

#: Default requests per streamed chunk: large enough to amortize the
#: per-chunk array construction, small enough (~a few MB of columns)
#: to keep memory flat.
DEFAULT_CHUNK_SIZE = 65536


class StreamingTrace:
    """A trace iterated chunk-by-chunk from a restartable source.

    ``chunks`` is a zero-argument callable returning a fresh iterator of
    :class:`Trace` chunks — restartable so the trace can be replayed (or
    analyzed) more than once, like a materialized trace.  Only one chunk
    of columns is live at any point during iteration.
    """

    def __init__(self, chunks: Callable[[], Iterator[Trace]], name: str) -> None:
        self._chunks = chunks
        self.name = name

    def iter_chunks(self) -> Iterator[Trace]:
        return self._chunks()

    def iter_rows(self) -> Iterator[Tuple[float, int, int, int, Optional[np.ndarray]]]:
        """The replay hot path: rows from one chunk at a time."""
        for chunk in self._chunks():
            yield from chunk.iter_rows()

    def iter_requests(self, chunk_size: Optional[int] = None) -> Iterator[IORequest]:
        # chunk_size is already fixed by the source; accepted for
        # drop-in parity with Trace.iter_requests.
        for chunk in self._chunks():
            yield from chunk.iter_requests()

    def __iter__(self) -> Iterator[IORequest]:
        return self.iter_requests()

    def materialize(self) -> Trace:
        """Concatenate all chunks into an in-memory :class:`Trace`."""
        return concat_traces(list(self._chunks()), self.name)


def concat_traces(chunks: List[Trace], name: str) -> Trace:
    """Concatenate trace chunks (rebasing fingerprint offsets)."""
    if not chunks:
        return Trace(
            np.empty(0),
            np.empty(0, dtype=np.uint8),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int32),
            np.empty(0, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
            name,
        )
    offsets = [chunks[0].fp_offsets]
    base = int(chunks[0].fp_offsets[-1])
    for chunk in chunks[1:]:
        offsets.append(chunk.fp_offsets[1:] + base)
        base += int(chunk.fp_offsets[-1])
    return Trace(
        np.concatenate([c.times_us for c in chunks]),
        np.concatenate([c.ops for c in chunks]),
        np.concatenate([c.lpns for c in chunks]),
        np.concatenate([c.npages for c in chunks]),
        np.concatenate([c.fps_flat for c in chunks]),
        np.concatenate(offsets),
        name,
    )


def iter_csv_chunks(
    path: Union[str, Path],
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    name: Optional[str] = None,
) -> Iterator[Trace]:
    """Stream a ``Trace.save_csv`` file as chunks of ``chunk_size``
    requests; concatenating them reproduces :meth:`Trace.load_csv`."""
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    trace_name = name or Path(path).stem
    write = int(OpKind.WRITE)
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header != Trace.CSV_HEADER:
            raise ValueError(f"unrecognized trace CSV header: {header}")
        times: List[float] = []
        ops: List[int] = []
        lpns: List[int] = []
        npages: List[int] = []
        fps: List[int] = []
        offsets: List[int] = [0]
        emitted = False

        def take() -> Trace:
            nonlocal times, ops, lpns, npages, fps, offsets
            chunk = Trace(
                np.asarray(times, dtype=np.float64),
                np.asarray(ops, dtype=np.uint8),
                np.asarray(lpns, dtype=np.int64),
                np.asarray(npages, dtype=np.int32),
                np.asarray(fps, dtype=np.int64),
                np.asarray(offsets, dtype=np.int64),
                trace_name,
            )
            times, ops, lpns, npages, fps, offsets = [], [], [], [], [], [0]
            return chunk

        for row in reader:
            times.append(float(row[0]))
            op = int(row[1])
            ops.append(op)
            lpns.append(int(row[2]))
            npages.append(int(row[3]))
            if op == write:
                fps.extend(int(tok, 16) for tok in row[4].split("/"))
            offsets.append(len(fps))
            if len(times) >= chunk_size:
                emitted = True
                yield take()
        if times or not emitted:
            yield take()


def open_trace(
    path: Union[str, Path],
    fmt: Optional[str] = None,
    stream: bool = False,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    name: Optional[str] = None,
):
    """Open an on-disk trace in any supported format.

    ``fmt`` is ``"csv"``, ``"npz"``, ``"fiu"``, or ``None`` to infer
    from the file extension (unknown extensions mean FIU text, the
    format real SyLab traces ship in).

    ``stream=False`` materializes the trace (npz still memory-maps its
    columns).  ``stream=True`` guarantees constant-memory access: text
    formats parse lazily in ``chunk_size``-request chunks, npz columns
    are memory-mapped, so either way iteration never holds the whole
    trace in RAM.
    """
    path = Path(path)
    if fmt is None:
        suffix = path.suffix.lower()
        fmt = {".csv": "csv", ".npz": "npz"}.get(suffix, "fiu")
    if fmt == "npz":
        # Memory-mapped columns are already constant-memory.
        return Trace.load_npz(path, name=name)
    if fmt == "csv":
        if not stream:
            return Trace.load_csv(path, name=name)
        return StreamingTrace(
            lambda: iter_csv_chunks(path, chunk_size, name), name or path.stem
        )
    if fmt == "fiu":
        if not stream:
            return load_fiu_trace(path, name=name)
        return StreamingTrace(
            lambda: iter_fiu_chunks(path, chunk_size, name), name or path.stem
        )
    raise ValueError(f"unknown trace format {fmt!r}")
