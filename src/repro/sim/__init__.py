"""Discrete-event simulation engine underpinning the SSD model."""

from repro.sim.events import Event, EventKind
from repro.sim.engine import EventQueue, Simulator

__all__ = ["Event", "EventKind", "EventQueue", "Simulator"]
