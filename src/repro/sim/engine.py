"""Event queue and simulation driver.

The engine is deliberately minimal: a binary-heap event queue plus a
clock.  Device models (see :mod:`repro.device`) schedule events and react
to them via callbacks.  Per the paper's FlashSim lineage the simulation
is single-threaded and deterministic; throughput comes from keeping the
per-event work O(1), not from concurrency.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.sim.events import Event, EventKind


class SimulationError(RuntimeError):
    """Raised on engine misuse (e.g. scheduling into the past)."""


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(
        self,
        time: float,
        kind: EventKind = EventKind.GENERIC,
        payload: Any = None,
        callback: Optional[Callable[[Event], None]] = None,
    ) -> Event:
        event = Event(time=time, kind=kind, seq=self._seq, payload=payload, callback=callback)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest live event."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        raise IndexError("pop from empty EventQueue")

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event, or ``None`` if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def cancel(self, event: Event) -> None:
        if not event.cancelled:
            event.cancel()
            self._live -= 1


class Simulator:
    """Clock + event queue + run loop.

    A :class:`Simulator` owns the master clock (float microseconds).
    Components schedule callbacks with :meth:`schedule`; :meth:`run`
    drains the queue, advancing the clock monotonically.
    """

    def __init__(self) -> None:
        self.queue = EventQueue()
        self.now: float = 0.0
        self.events_processed: int = 0

    def schedule(
        self,
        delay: float,
        kind: EventKind = EventKind.GENERIC,
        payload: Any = None,
        callback: Optional[Callable[[Event], None]] = None,
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` microseconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.queue.push(self.now + delay, kind, payload, callback)

    def schedule_at(
        self,
        time: float,
        kind: EventKind = EventKind.GENERIC,
        payload: Any = None,
        callback: Optional[Callable[[Event], None]] = None,
    ) -> Event:
        """Schedule ``callback`` at absolute simulation ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self.now})"
            )
        return self.queue.push(time, kind, payload, callback)

    def step(self) -> bool:
        """Process one event; return ``False`` when the queue is empty."""
        try:
            event = self.queue.pop()
        except IndexError:
            return False
        if event.time < self.now:
            raise SimulationError(
                f"event time {event.time} precedes clock {self.now}"
            )
        self.now = event.time
        self.events_processed += 1
        if event.callback is not None:
            event.callback(event)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Drain the queue, optionally stopping at ``until`` microseconds
        or after ``max_events`` callbacks."""
        if until is None and max_events is None:
            # Hot path for full replays: no per-event peek/limit checks.
            while self.step():
                pass
            return
        processed = 0
        while len(self.queue) > 0:
            next_time = self.queue.peek_time()
            if until is not None and next_time is not None and next_time > until:
                self.now = until
                return
            if max_events is not None and processed >= max_events:
                return
            self.step()
            processed += 1
        if until is not None and until > self.now:
            self.now = until
