"""Typed simulation events.

Events are ordered by ``(time, priority, seq)``: equal-time events are
broken first by an explicit priority (completions before arrivals, so a
device frees its channel before the next request is admitted) and then
by insertion order, making every run bit-for-bit deterministic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class EventKind(enum.IntEnum):
    """Kinds of events the SSD simulation schedules.

    The integer value doubles as the equal-time tie-break priority:
    lower values run first.
    """

    OP_COMPLETE = 0      # a flash operation finished on a channel
    GC_COMPLETE = 1      # a garbage-collection burst finished
    REQUEST_ARRIVAL = 2  # a user I/O request arrives at the device
    GENERIC = 3          # user-scheduled callback


@dataclass(order=True, slots=True)
class Event:
    """A single scheduled occurrence in the simulation.

    Comparison ordering (time, kind, seq) is what :class:`heapq` uses;
    ``payload`` and ``callback`` are excluded from ordering.
    """

    time: float
    kind: EventKind
    seq: int
    payload: Any = field(compare=False, default=None)
    callback: Optional[Callable[["Event"], None]] = field(compare=False, default=None)
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event dead; the queue will skip it on pop."""
        self.cancelled = True
