"""Event-driven SSD controller.

Replays a trace against an FTL scheme under the discrete-event engine:

* request arrivals fire at trace timestamps (scheduled lazily, one
  ahead, so the event heap stays O(1));
* the device services requests FIFO — the single-FTL-thread model of
  FlashSim; multi-page requests stripe across channels inside the
  service-time computation;
* before servicing a write, the controller checks the free-space
  watermark and, if crossed, runs garbage collection.  Two modes
  (``config.gc_mode``):

  - ``blocking`` — the triggering write stalls for a whole burst (up to
    ``gc_burst_blocks`` victims), the classic FlashSim behaviour whose
    interference Figs 11 and 12 quantify;
  - ``preemptive`` — the write stalls only until a small free-block
    reserve is restored; the rest of the reclamation happens one block
    per chunk in device idle time, so a queued request waits at most one
    block-collection (semi-preemptive GC, Lee et al. ISPASS'11);

* response time = completion − arrival (queueing included).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Deque, Optional, Tuple

import numpy as np

from repro.device.writebuffer import WriteBuffer, WriteBufferStats
from repro.metrics.counters import GCCounters, IOCounters
from repro.metrics.latency import LatencyRecorder, LatencySummary
from repro.ftl.wear import WearStats
from repro.schemes.base import FTLScheme
from repro.sim.engine import Simulator
from repro.sim.events import Event, EventKind
from repro.workloads.request import OpKind
from repro.workloads.trace import Trace

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsSnapshot

#: Queued row: (arrival_us, op, lpn, npages, fps).
_Row = Tuple[float, int, int, int, Optional[np.ndarray]]


@dataclass(frozen=True)
class RunResult:
    """Everything one replay produced, for the experiment harness."""

    scheme: str
    trace: str
    latency: LatencySummary
    response_times_us: np.ndarray
    gc: GCCounters
    io: IOCounters
    wear: WearStats
    simulated_us: float
    #: present when the device ran with a DRAM write buffer.
    buffer: Optional[WriteBufferStats] = None
    #: present when the device ran with a metrics registry attached
    #: (final values + columnar time series; see repro.obs.metrics).
    metrics: Optional["MetricsSnapshot"] = None

    @property
    def blocks_erased(self) -> int:
        return self.gc.blocks_erased

    @property
    def pages_migrated(self) -> int:
        return self.gc.pages_migrated

    @property
    def mean_response_us(self) -> float:
        return self.latency.mean_us

    def write_amplification(self) -> float:
        return self.io.write_amplification(self.gc)


class SSD:
    """One simulated SSD: a scheme plus the admission/service machinery.

    ``tracer`` / ``telemetry`` / ``heartbeat`` / ``metrics`` are the
    optional observers from :mod:`repro.obs`.  Each one costs exactly
    one ``is not None`` test per request when absent — the default
    replay path stays untouched.
    """

    def __init__(
        self,
        scheme: FTLScheme,
        sim: Optional[Simulator] = None,
        tracer=None,
        telemetry=None,
        heartbeat=None,
        metrics=None,
        keep_samples: bool = True,
    ) -> None:
        self.scheme = scheme
        self.sim = sim if sim is not None else Simulator()
        #: keep_samples=False switches latency capture to the fixed-size
        #: histogram so replay memory is independent of trace length
        #: (RunResult.response_times_us comes back empty in that mode).
        self.latency = LatencyRecorder(keep_samples=keep_samples)
        self._queue: Deque[_Row] = deque()
        self._busy = False
        self._rows = None  # type: Optional[object]
        self._preemptive = scheme.config.gc_mode == "preemptive"
        # Hot-path constants: _service runs once per request, so resolve
        # the attribute chains and opcode enums once here.
        self._timing = scheme.timing
        self._channels = scheme.flash.geometry.channels
        self._op_write = int(OpKind.WRITE)
        self._op_read = int(OpKind.READ)
        self._op_trim = int(OpKind.TRIM)
        self._op_names = {
            self._op_write: "write",
            self._op_read: "read",
            self._op_trim: "trim",
        }
        #: idle-time GC chunks completed (preemptive mode telemetry).
        self.background_gc_chunks = 0
        #: requests completed (drives heartbeat progress).
        self.requests_completed = 0
        self.buffer: Optional[WriteBuffer] = None
        if scheme.config.write_buffer_pages > 0:
            self.buffer = WriteBuffer(
                scheme.config.write_buffer_pages,
                dram_us=scheme.config.write_buffer_dram_us,
            )
        from repro.metrics.timeline import TimelineRecorder
        from repro.obs.hooks import HookMux

        #: free-space / GC-activity time series (sampled at GC events).
        self.timeline = TimelineRecorder()
        #: All post-GC observers, fired with this SSD after every GC
        #: episode (foreground burst or idle chunk).  The differential
        #: oracle's invariant checker and telemetry snapshots coexist
        #: here; see also the :attr:`gc_hook` compatibility property.
        self.hooks = HookMux()
        self._user_gc_hook: Optional[Callable[["SSD"], None]] = None
        #: sim time of the latest GC state sample.  GC completes *inside*
        #: a service computation (sim.now still reads the service start),
        #: so hook-driven snapshots take their timestamp from here to
        #: keep the timeline monotone.
        self._gc_sample_us = 0.0
        self.tracer = tracer
        #: the scheme emits GC-phase spans through the same tracer.
        scheme.tracer = tracer
        self.telemetry = telemetry
        if telemetry is not None:
            self.hooks.add(self._telemetry_gc_snapshot)
        self.heartbeat = heartbeat
        #: resolved-handle metrics bundle (repro.obs.metrics); binding
        #: here registers every gauge against this scheme/buffer once.
        self.metrics = metrics
        if metrics is not None:
            metrics.bind(self)

    # ------------------------------------------------------------------ hooks

    @property
    def gc_hook(self) -> Optional[Callable[["SSD"], None]]:
        """Single-slot compatibility view over :attr:`hooks`.

        Historically ``ssd.gc_hook = fn`` installed the one post-GC
        callback (the differential-oracle harness still assigns
        :func:`repro.oracle.invariants.check_all` this way).  The slot
        now maps onto one :class:`~repro.obs.HookMux` entry, so it
        composes with telemetry snapshots instead of clobbering them.
        """
        return self._user_gc_hook

    @gc_hook.setter
    def gc_hook(self, hook: Optional[Callable[["SSD"], None]]) -> None:
        if self._user_gc_hook is not None:
            self.hooks.remove(self._user_gc_hook)
        self._user_gc_hook = hook
        if hook is not None:
            self.hooks.add(hook)

    def _telemetry_gc_snapshot(self, ssd: "SSD") -> None:
        self.telemetry.snapshot(max(self._gc_sample_us, self.sim.now), self)

    # ------------------------------------------------------------------ replay

    def replay(self, trace: Trace) -> RunResult:
        """Replay ``trace`` to completion and summarize the run.

        ``trace`` is anything with ``iter_rows()`` and ``name`` — a
        materialized :class:`Trace`, a memory-mapped npz trace, or a
        :class:`repro.workloads.stream.StreamingTrace`; the replay loop
        is single-pass either way.

        With ``config.kernel = "vectorized"`` the replay runs through
        the batched kernels in :mod:`repro.kernel` instead of the event
        engine — bit-identical results, one pass per chunk.  Features
        the kernels do not model (preemptive GC, write buffers,
        telemetry/heartbeat observers, per-page-hashing schemes) fall
        back to the reference loop below.
        """
        if self.heartbeat is not None:
            try:
                self.heartbeat.expect(len(trace))
            except TypeError:
                pass  # streaming traces have no known length (no ETA)
        if self.scheme.config.kernel == "vectorized":
            from repro.kernel import kernel_eligible, replay_vectorized

            if kernel_eligible(self, trace):
                return replay_vectorized(self, trace)
        self._rows = trace.iter_rows()
        self._schedule_next_arrival()
        self.sim.run()
        if self.buffer is not None:
            # End-of-run flush: destage whatever is still buffered so the
            # GC/WAF counters reflect the full write traffic (untimed).
            remaining = self.buffer.drain()
            if remaining:
                self._destage_with_gc(remaining, self.sim.now)
        if self.telemetry is not None:
            self.telemetry.snapshot(max(self._gc_sample_us, self.sim.now), self)
        if self.metrics is not None:
            self.metrics.finish(self.sim.now, self)
        if self.heartbeat is not None:
            self.heartbeat.finish(
                self.sim.now,
                self.sim.events_processed,
                self.requests_completed,
                gc_collects=self.scheme.gc_counters.gc_invocations,
            )
        return RunResult(
            scheme=self.scheme.name,
            trace=trace.name,
            latency=self.latency.summary(),
            response_times_us=self.latency.samples().copy(),
            gc=self.scheme.gc_counters,
            io=self.scheme.io_counters,
            wear=self.scheme.wear(),
            simulated_us=self.sim.now,
            buffer=self.buffer.stats if self.buffer is not None else None,
            metrics=self.metrics.snapshot() if self.metrics is not None else None,
        )

    def state_snapshot(self):
        """The scheme's comparable state (see ``FTLScheme.state_snapshot``)."""
        return self.scheme.state_snapshot()

    # ------------------------------------------------------------------ events

    def _schedule_next_arrival(self) -> None:
        assert self._rows is not None
        row = next(self._rows, None)
        if row is not None:
            self.sim.schedule_at(
                row[0], EventKind.REQUEST_ARRIVAL, row, self._on_arrival
            )

    def _on_arrival(self, event: Event) -> None:
        self._queue.append(event.payload)
        self._schedule_next_arrival()
        if not self._busy:
            self._start_service()

    def _start_service(self) -> None:
        row = self._queue.popleft()
        self._busy = True
        duration = self._service(row)
        if self.tracer is not None:
            now = self.sim.now
            self.tracer.span(
                "io",
                self._op_names.get(row[1], "op"),
                now,
                duration,
                lpn=row[2],
                npages=row[3],
                queued_us=now - row[0],
            )
        self.sim.schedule(
            duration, EventKind.OP_COMPLETE, row[0], self._on_complete
        )

    def _on_complete(self, event: Event) -> None:
        arrival_us = event.payload
        latency_us = self.sim.now - arrival_us
        self.latency.record(latency_us)
        self.requests_completed += 1
        if self.telemetry is not None:
            self.telemetry.on_complete(self.sim.now, latency_us, self)
        if self.metrics is not None:
            self.metrics.on_complete(self.sim.now, latency_us, self)
        if self.heartbeat is not None:
            self.heartbeat.tick(
                self.sim.now,
                self.sim.events_processed,
                self.requests_completed,
                gc_collects=self.scheme.gc_counters.gc_invocations,
            )
        if self._queue:
            self._start_service()
        else:
            self._busy = False
            self._maybe_background_gc()

    # ------------------------------------------------------------------ idle GC

    def _maybe_background_gc(self) -> None:
        """Preemptive mode: reclaim one block per idle gap."""
        if not self._preemptive or not self.scheme.needs_background_gc():
            return
        duration = self.scheme.collect_next(self.sim.now)
        if duration <= 0.0:
            return
        self._busy = True
        self.background_gc_chunks += 1
        self.sim.schedule(duration, EventKind.GC_COMPLETE, None, self._on_bg_gc_done)

    def _on_bg_gc_done(self, event: Event) -> None:
        self._busy = False
        self._sample_gc_state(self.sim.now)
        if self.hooks:
            self.hooks(self)
        if self._queue:
            self._start_service()
        else:
            self._maybe_background_gc()

    # ------------------------------------------------------------------ service

    def _service(self, row: _Row) -> float:
        """Apply the request to the FTL and return its service time."""
        _, op, lpn, npages, fps = row
        scheme = self.scheme
        timing = self._timing
        now = self.sim.now
        if op == self._op_write:
            if self.buffer is not None:
                return self._service_buffered_write(lpn, npages, fps, now)
            # GC watermark check happens on the write path: writes are
            # what consume free pages.  In blocking mode the whole burst
            # stalls this request and everything queued behind it; in
            # preemptive mode only the minimum reclamation needed to
            # restore the free-block reserve does.
            gc_us = self._gc_before_write(now)
            outcome = scheme.write_request(lpn, fps, now + gc_us)
            service = timing.write_request_us(outcome.programs, self._channels)
            if outcome.hashed_pages:
                # Inline dedup: hash + lookup serial on the critical path.
                service += timing.inline_dedup_us(outcome.hashed_pages)
            if outcome.programs == 0:
                service += timing.lookup_us  # metadata-only update
            return gc_us + service
        if op == self._op_read:
            if self.buffer is not None:
                return self._service_buffered_read(lpn, npages)
            scheme.read_request(lpn, npages)
            return timing.read_request_us(npages, self._channels)
        if op == self._op_trim:
            if self.buffer is not None:
                for offset in range(npages):
                    self.buffer.trim(lpn + offset)
            scheme.trim_request(lpn, npages, now)
            return timing.overhead_us + timing.lookup_us * npages
        raise ValueError(f"unknown opcode {op}")

    def _gc_before_write(self, now: float) -> float:
        if self._preemptive:
            gc_us = self._foreground_preemptive_gc(now)
        else:
            gc_us = self.scheme.run_gc(now) if self.scheme.needs_gc() else 0.0
        if gc_us > 0.0:
            self._sample_gc_state(now + gc_us)
            if self.hooks:
                self.hooks(self)
        return gc_us

    def _sample_gc_state(self, time_us: float) -> None:
        self._gc_sample_us = time_us
        scheme = self.scheme
        self.timeline.sample("free_fraction", time_us, scheme.allocator.free_fraction())
        self.timeline.sample(
            "blocks_erased", time_us, float(scheme.gc_counters.blocks_erased)
        )
        self.timeline.sample(
            "pages_migrated", time_us, float(scheme.gc_counters.pages_migrated)
        )

    def _service_buffered_write(
        self, lpn: int, npages: int, fps, now: float
    ) -> float:
        """Absorb a write into the DRAM buffer, destaging on overflow."""
        timing = self._timing
        buffer = self.buffer
        assert buffer is not None
        evicted = []
        for offset in range(npages):
            evicted.extend(buffer.put(lpn + offset, int(fps[offset])))
        service = timing.overhead_us + npages * buffer.dram_us
        if not evicted:
            return service
        if self.tracer is not None:
            self.tracer.instant("io", "destage", now, pages=len(evicted))
        gc_us, programs, hashed = self._destage_with_gc(evicted, now)
        service += timing.write_request_us(programs, self._channels)
        if hashed:
            service += timing.inline_dedup_us(hashed)
        return gc_us + service

    def _destage_with_gc(self, pages, now: float):
        """Destage in block-sized chunks, interleaving GC so a large
        batch can never outrun the bounded per-burst reclamation.
        Returns ``(gc_us, programs, hashed_pages)``."""
        scheme = self.scheme
        chunk = scheme.flash.pages_per_block
        gc_us = 0.0
        programs = 0
        hashed = 0
        for start in range(0, len(pages), chunk):
            gc_us += self._gc_before_write(now + gc_us)
            outcome = scheme.destage(pages[start : start + chunk], now + gc_us)
            programs += outcome.programs
            hashed += outcome.hashed_pages
        return gc_us, programs, hashed

    def _service_buffered_read(self, lpn: int, npages: int) -> float:
        """Serve buffered pages from DRAM, the rest from flash.

        The per-request firmware overhead is charged exactly once:
        a pure miss costs precisely ``read_request_us`` (as if no
        buffer existed), a pure hit costs overhead + DRAM slots, and a
        mixed request costs the flash read for the misses plus a DRAM
        slot per hit.
        """
        scheme = self.scheme
        timing = self._timing
        buffer = self.buffer
        assert buffer is not None
        hits = sum(1 for offset in range(npages) if buffer.read(lpn + offset) is not None)
        misses = npages - hits
        scheme.read_request(lpn, npages)
        if hits == 0:
            return timing.read_request_us(npages, self._channels)
        service = timing.overhead_us + hits * buffer.dram_us
        if misses:
            # Flash slots for the misses; their request overhead is
            # already covered by the single charge above.
            service += (
                timing.read_request_us(misses, self._channels) - timing.overhead_us
            )
        return service

    def _foreground_preemptive_gc(self, now: float) -> float:
        """Reclaim only until the free-block reserve is restored."""
        scheme = self.scheme
        reserve = scheme.reserve_blocks()
        duration = 0.0
        while scheme.allocator.free_blocks < reserve:
            chunk = scheme.collect_next(now + duration)
            if chunk <= 0.0:
                break
            duration += chunk
        return duration


def run_trace(
    scheme: FTLScheme,
    trace: Trace,
    tracer=None,
    telemetry=None,
    heartbeat=None,
    metrics=None,
    keep_samples: bool = True,
) -> RunResult:
    """Convenience wrapper: replay ``trace`` on a fresh SSD."""
    return SSD(
        scheme,
        tracer=tracer,
        telemetry=telemetry,
        heartbeat=heartbeat,
        metrics=metrics,
        keep_samples=keep_samples,
    ).replay(trace)
