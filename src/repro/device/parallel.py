"""Channel-parallel SSD controller.

The default :class:`~repro.device.ssd.SSD` models the device as one
FIFO server whose multi-page requests stripe internally — adequate for
the paper's single-queue FlashSim setup, but it serializes *requests*
and lets a GC burst stall the whole device.  This controller models
what the related work (Shahidi et al., SC'16 — parallel GC) exploits:
``channels`` independent servers, each with its own queue, where a GC
burst occupies only the channel whose write triggered it while the
other channels keep serving user I/O.

Dispatch model: write requests hash to a channel by start LPN (so
repeated writes of the same extent stay ordered; overlapping extents
with *different* starts may reorder, a documented approximation); reads
follow the channel of their first mapped page; each request is serviced
by one channel end-to-end (``channels=1`` timing).

State mutations still happen on a single FTL (mapping, allocator,
dedup state are shared and mutated atomically at service start), so all
correctness invariants of the schemes hold unchanged; the channel model
only changes *when* things complete.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

import numpy as np

from repro.device.ssd import RunResult
from repro.metrics.latency import LatencyRecorder
from repro.schemes.base import FTLScheme
from repro.sim.engine import Simulator
from repro.sim.events import Event, EventKind
from repro.workloads.request import OpKind
from repro.workloads.trace import Trace

_Row = Tuple[float, int, int, int, Optional[np.ndarray]]


class ParallelSSD:
    """Per-channel queues; GC blocks only its own channel."""

    _OP_NAMES = {
        int(OpKind.WRITE): "write",
        int(OpKind.READ): "read",
        int(OpKind.TRIM): "trim",
    }

    def __init__(
        self,
        scheme: FTLScheme,
        sim: Optional[Simulator] = None,
        tracer=None,
        heartbeat=None,
    ) -> None:
        self.scheme = scheme
        self.sim = sim if sim is not None else Simulator()
        self.latency = LatencyRecorder()
        self.channels = scheme.flash.geometry.channels
        self._queues: List[Deque[_Row]] = [deque() for _ in range(self.channels)]
        self._busy = [False] * self.channels
        self._rows = None  # type: Optional[object]
        self.requests_completed = 0
        self.tracer = tracer
        #: the scheme's GC-phase spans flow through the same tracer.
        scheme.tracer = tracer
        self.heartbeat = heartbeat

    # ------------------------------------------------------------------ replay

    def replay(self, trace: Trace) -> RunResult:
        self._rows = trace.iter_rows()
        self._schedule_next_arrival()
        self.sim.run()
        if self.heartbeat is not None:
            self.heartbeat.finish(
                self.sim.now, self.sim.events_processed, self.requests_completed
            )
        return RunResult(
            scheme=self.scheme.name,
            trace=trace.name,
            latency=self.latency.summary(),
            response_times_us=self.latency.samples().copy(),
            gc=self.scheme.gc_counters,
            io=self.scheme.io_counters,
            wear=self.scheme.wear(),
            simulated_us=self.sim.now,
        )

    # ------------------------------------------------------------------ events

    def _schedule_next_arrival(self) -> None:
        assert self._rows is not None
        row = next(self._rows, None)
        if row is not None:
            self.sim.schedule_at(row[0], EventKind.REQUEST_ARRIVAL, row, self._on_arrival)

    def _dispatch_channel(self, row: _Row) -> int:
        _, op, lpn, _, _ = row
        if op == int(OpKind.WRITE):
            return lpn % self.channels
        ppn = self.scheme.mapping.lookup(lpn)
        if ppn is not None:
            return self.scheme.flash.geometry.ppn_to_channel(ppn)
        return lpn % self.channels

    def _on_arrival(self, event: Event) -> None:
        row = event.payload
        channel = self._dispatch_channel(row)
        self._queues[channel].append(row)
        self._schedule_next_arrival()
        if not self._busy[channel]:
            self._start_service(channel)

    def _start_service(self, channel: int) -> None:
        row = self._queues[channel].popleft()
        self._busy[channel] = True
        duration = self._service(row)
        if self.tracer is not None:
            now = self.sim.now
            self.tracer.span(
                f"io.ch{channel}",
                self._OP_NAMES.get(row[1], "op"),
                now,
                duration,
                lpn=row[2],
                npages=row[3],
                queued_us=now - row[0],
            )
        self.sim.schedule(
            duration,
            EventKind.OP_COMPLETE,
            (channel, row[0]),
            self._on_complete,
        )

    def _on_complete(self, event: Event) -> None:
        channel, arrival_us = event.payload
        self.latency.record(self.sim.now - arrival_us)
        self.requests_completed += 1
        if self.heartbeat is not None:
            self.heartbeat.tick(
                self.sim.now, self.sim.events_processed, self.requests_completed
            )
        if self._queues[channel]:
            self._start_service(channel)
        else:
            self._busy[channel] = False

    # ------------------------------------------------------------------ service

    def _service(self, row: _Row) -> float:
        """One channel serves the request end-to-end (channels=1)."""
        _, op, lpn, npages, fps = row
        scheme = self.scheme
        timing = scheme.timing
        now = self.sim.now
        if op == int(OpKind.WRITE):
            gc_us = scheme.run_gc(now) if scheme.needs_gc() else 0.0
            outcome = scheme.write_request(lpn, fps, now + gc_us)
            service = timing.write_request_us(outcome.programs, 1)
            if outcome.hashed_pages:
                service += timing.inline_dedup_us(outcome.hashed_pages)
            if outcome.programs == 0:
                service += timing.lookup_us
            return gc_us + service
        if op == int(OpKind.READ):
            scheme.read_request(lpn, npages)
            return timing.read_request_us(npages, 1)
        if op == int(OpKind.TRIM):
            scheme.trim_request(lpn, npages, now)
            return timing.overhead_us + timing.lookup_us * npages
        raise ValueError(f"unknown opcode {op}")
