"""DRAM write buffer in front of the FTL.

The paper's related work (section V) lists write buffering [32, 36] as
the third family of GC mitigations: absorb overwrites in RAM so they
never reach flash.  This module implements an LRU write-back buffer the
device can stack in front of any scheme, letting the repository compare
"reduce writes before flash" against "dedup inside GC".

Semantics:

* a buffered write is acknowledged at DRAM latency; rewriting a
  buffered LPN is absorbed entirely (no flash traffic ever);
* when the buffer exceeds capacity it destages a batch of
  least-recently-used pages to the FTL on the caller's critical path
  (write-back, destage-on-fill);
* reads of buffered LPNs are served from DRAM;
* TRIM drops buffered pages without destaging them.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass
class WriteBufferStats:
    """Traffic accounting for one run."""

    pages_buffered: int = 0
    #: rewrites absorbed while the page was still buffered.
    overwrite_hits: int = 0
    pages_destaged: int = 0
    read_hits: int = 0
    trims_absorbed: int = 0

    @property
    def absorption_ratio(self) -> float:
        """Fraction of buffered page writes that never reached flash."""
        if self.pages_buffered == 0:
            return 0.0
        return 1.0 - self.pages_destaged / self.pages_buffered


class WriteBuffer:
    """LRU write-back buffer of (LPN -> content fingerprint)."""

    def __init__(
        self,
        capacity_pages: int,
        dram_us: float = 1.0,
        destage_batch: Optional[int] = None,
    ) -> None:
        if capacity_pages < 1:
            raise ValueError("capacity_pages must be >= 1")
        if dram_us < 0:
            raise ValueError("dram_us must be non-negative")
        self.capacity = capacity_pages
        self.dram_us = dram_us
        self.destage_batch = (
            destage_batch if destage_batch is not None else max(1, capacity_pages // 8)
        )
        self._pages: "OrderedDict[int, int]" = OrderedDict()
        self.stats = WriteBufferStats()

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, lpn: int) -> bool:
        return lpn in self._pages

    # -- operations ---------------------------------------------------------------

    def put(self, lpn: int, fp: int) -> List[Tuple[int, int]]:
        """Buffer one page write; return pages destaged to make room."""
        self.stats.pages_buffered += 1
        if lpn in self._pages:
            self.stats.overwrite_hits += 1
            self._pages.move_to_end(lpn)
            self._pages[lpn] = fp
            return []
        self._pages[lpn] = fp
        evicted: List[Tuple[int, int]] = []
        if len(self._pages) > self.capacity:
            for _ in range(min(self.destage_batch, len(self._pages))):
                evicted.append(self._pages.popitem(last=False))
        self.stats.pages_destaged += len(evicted)
        return evicted

    def read(self, lpn: int) -> Optional[int]:
        """Content fingerprint if buffered (counts a read hit)."""
        fp = self._pages.get(lpn)
        if fp is not None:
            self.stats.read_hits += 1
        return fp

    def trim(self, lpn: int) -> bool:
        """Drop a buffered page without destaging; True if present."""
        if self._pages.pop(lpn, None) is not None:
            self.stats.trims_absorbed += 1
            return True
        return False

    def drain(self) -> List[Tuple[int, int]]:
        """Destage everything (end-of-run flush)."""
        remaining = list(self._pages.items())
        self.stats.pages_destaged += len(remaining)
        self._pages.clear()
        return remaining
