"""SSD device controller: request admission, service, GC triggering."""

from repro.device.ssd import SSD, RunResult, run_trace
from repro.device.parallel import ParallelSSD
from repro.device.writebuffer import WriteBuffer, WriteBufferStats

__all__ = [
    "SSD",
    "ParallelSSD",
    "RunResult",
    "run_trace",
    "WriteBuffer",
    "WriteBufferStats",
]
