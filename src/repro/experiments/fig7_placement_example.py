"""Fig 7 — reference-count-based data page placement, before/after GC.

Fig 7 sketches how CAGC's GC pass un-mixes pages: before GC, pages of
different reference counts sit interleaved in the same blocks; after
GC, high-refcount pages are grouped in the cold region and refcount-1
pages in the hot region.

We reproduce it measurably: build a population of shared and unique
contents, run GC passes, and report each region's composition (mean
resident refcount, invalid-page density) via
:func:`repro.ftl.regions.region_stats`.  The separation quality —
cold's mean refcount above the threshold, hot's near 1 — is the
figure's claim in numbers.
"""

from __future__ import annotations

from repro.config import GeometryConfig, SSDConfig
from repro.core.cagc import CAGCScheme
from repro.experiments.common import ExperimentReport
from repro.ftl.regions import region_stats
from repro.oracle.invariants import check_all


def _demo_config() -> SSDConfig:
    return SSDConfig(
        geometry=GeometryConfig(channels=2, pages_per_block=8, blocks=64),
        cold_region_ratio=0.5,
    )


def run_placement_demo() -> dict:
    """Drive the Fig 7 scenario; return per-region composition."""
    scheme = CAGCScheme(_demo_config())
    fp = 0
    lpns = int(scheme.config.logical_pages * 0.9)
    # Interleave shared content (drawn from a 8-content pool -> high
    # refcounts) with unique content, then churn so GC passes happen.
    for round_ in range(6):
        for lpn in range(lpns):
            if scheme.needs_gc():
                scheme.run_gc(0.0)
            shared = lpn % 2 == 0
            content = (lpn % 8) if shared else fp + 1_000_000
            scheme.write_page(lpn, content, float(fp))
            fp += 1
    check_all(scheme, accounting=False)  # write_page driver: no request counters
    stats = region_stats(scheme)
    return {
        name: {
            "blocks": s.blocks,
            "valid_pages": s.valid_pages,
            "invalid_density": s.invalid_density,
            "mean_refcount": s.mean_refcount,
        }
        for name, s in stats.items()
    }


def run(scale: str = "bench") -> ExperimentReport:
    data = run_placement_demo()
    rows = [
        (
            name,
            row["blocks"],
            row["valid_pages"],
            f"{row['invalid_density']:.1%}",
            f"{row['mean_refcount']:.2f}",
        )
        for name, row in data.items()
    ]
    return ExperimentReport(
        experiment_id="fig7",
        title="Region composition after refcount-based placement",
        headers=("Region", "Blocks", "Valid pages", "Invalid density", "Mean refcount"),
        rows=rows,
        paper_claim=(
            "after GC, pages with high reference counts are grouped in the "
            "cold region (rarely invalidated); refcount-1 pages in the hot "
            "region (quickly invalidated)"
        ),
        data=data,
    )
