"""Experiment registry: every paper table/figure plus the ablations.

Besides the id -> runner mapping, the registry knows which
:class:`~repro.runner.RunSpec` fan-out each GC-efficiency experiment is
built on (:func:`specs_for_experiments`), so the CLI can prewarm the
shared result cache with a process pool before the (serial) report
builders run.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence

from repro.experiments import (
    ablations,
    array_tail,
    stability,
    fig2_inline_overhead,
    fig6_refcount_invalid,
    fig7_placement_example,
    fig8_example,
    fig9_blocks_erased,
    fig10_pages_migrated,
    fig11_response_time,
    fig12_latency_cdf,
    fig13_victim_policy,
    table1_config,
    table2_workloads,
)
from repro.experiments.common import WORKLOADS, ExperimentReport, prefetch_results
from repro.runner import RunSpec, sweep_specs

EXPERIMENTS: Dict[str, Callable[[str], ExperimentReport]] = {
    "table1": table1_config.run,
    "table2": table2_workloads.run,
    "fig2": fig2_inline_overhead.run,
    "fig6": fig6_refcount_invalid.run,
    "fig7": fig7_placement_example.run,
    "fig8": fig8_example.run,
    "fig9": fig9_blocks_erased.run,
    "fig10": fig10_pages_migrated.run,
    "fig11": fig11_response_time.run,
    "fig12": fig12_latency_cdf.run,
    "fig13": fig13_victim_policy.run,
    "ablation-threshold": ablations.run_threshold,
    "ablation-placement": ablations.run_placement,
    "ablation-hash-latency": ablations.run_hash_latency,
    "ablation-op-space": ablations.run_op_space,
    "ablation-gc-mode": ablations.run_gc_mode,
    "ablation-separation": ablations.run_separation,
    "ablation-write-buffer": ablations.run_write_buffer,
    "ablation-hot-victims": ablations.run_hot_victims,
    "ablation-channels": ablations.run_channels,
    "stability": stability.run,
    "array-tail": array_tail.run,
}


#: Spec fan-out per experiment: the runs behind Fig 2, Figs 9-13, the
#: stability study and every ablation sweep.  Tables and the worked
#: examples (fig6/7/8) are analytic — no simulation, so no entry.
_SPEC_BUILDERS: Dict[str, Callable[[str], Sequence[RunSpec]]] = {
    "fig2": fig2_inline_overhead.fig2_specs,
    "fig9": lambda scale: sweep_specs(WORKLOADS, ("baseline", "cagc"), scale=scale),
    "fig10": lambda scale: sweep_specs(WORKLOADS, ("baseline", "cagc"), scale=scale),
    "fig11": lambda scale: sweep_specs(
        WORKLOADS, ("baseline", "inline-dedupe", "cagc"), scale=scale
    ),
    "fig12": lambda scale: sweep_specs(WORKLOADS, ("baseline", "cagc"), scale=scale),
    "fig13": lambda scale: sweep_specs(
        WORKLOADS,
        ("baseline", "cagc"),
        policies=("random", "greedy", "cost-benefit"),
        scale=scale,
    ),
    "stability": lambda scale: sweep_specs(
        WORKLOADS, ("baseline", "cagc"), seeds=(0, 1, 2), scale=scale
    ),
    "ablation-threshold": ablations.threshold_specs,
    "ablation-placement": ablations.placement_specs,
    "ablation-hash-latency": ablations.hash_latency_specs,
    "ablation-op-space": ablations.op_space_specs,
    "ablation-gc-mode": ablations.gc_mode_specs,
    "ablation-separation": ablations.separation_specs,
    "ablation-write-buffer": ablations.write_buffer_specs,
    "ablation-hot-victims": ablations.hot_victims_specs,
    "ablation-channels": ablations.channels_specs,
    "array-tail": array_tail.array_tail_specs,
}


def specs_for_experiments(
    experiment_ids: Iterable[str], scale: str = "bench"
) -> List[RunSpec]:
    """Deduplicated spec fan-out behind the given experiments."""
    specs: List[RunSpec] = []
    seen = set()
    for experiment_id in experiment_ids:
        builder = _SPEC_BUILDERS.get(experiment_id)
        if builder is None:
            continue
        for spec in builder(scale):
            if spec not in seen:
                seen.add(spec)
                specs.append(spec)
    return specs


def warm_experiments(
    experiment_ids: Iterable[str], scale: str = "bench", jobs: int = 1
) -> int:
    """Prewarm the result cache for the experiments' shared runs.

    Returns the number of distinct specs behind the selection; results
    land in the in-process memo and the persistent cache, so the
    subsequent (serial) report builders find every run precomputed.
    """
    specs = specs_for_experiments(experiment_ids, scale)
    prefetch_results(specs, jobs=jobs)
    return len(specs)


def run_experiment(experiment_id: str, scale: str = "bench") -> ExperimentReport:
    """Run one experiment by id (``fig9``, ``table2``, ...)."""
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None
    return runner(scale)
