"""Experiment registry: every paper table/figure plus the ablations."""

from __future__ import annotations

from typing import Callable, Dict

from repro.experiments import (
    ablations,
    stability,
    fig2_inline_overhead,
    fig6_refcount_invalid,
    fig7_placement_example,
    fig8_example,
    fig9_blocks_erased,
    fig10_pages_migrated,
    fig11_response_time,
    fig12_latency_cdf,
    fig13_victim_policy,
    table1_config,
    table2_workloads,
)
from repro.experiments.common import ExperimentReport

EXPERIMENTS: Dict[str, Callable[[str], ExperimentReport]] = {
    "table1": table1_config.run,
    "table2": table2_workloads.run,
    "fig2": fig2_inline_overhead.run,
    "fig6": fig6_refcount_invalid.run,
    "fig7": fig7_placement_example.run,
    "fig8": fig8_example.run,
    "fig9": fig9_blocks_erased.run,
    "fig10": fig10_pages_migrated.run,
    "fig11": fig11_response_time.run,
    "fig12": fig12_latency_cdf.run,
    "fig13": fig13_victim_policy.run,
    "ablation-threshold": ablations.run_threshold,
    "ablation-placement": ablations.run_placement,
    "ablation-hash-latency": ablations.run_hash_latency,
    "ablation-op-space": ablations.run_op_space,
    "ablation-gc-mode": ablations.run_gc_mode,
    "ablation-separation": ablations.run_separation,
    "ablation-write-buffer": ablations.run_write_buffer,
    "ablation-hot-victims": ablations.run_hot_victims,
    "ablation-channels": ablations.run_channels,
    "stability": stability.run,
}


def run_experiment(experiment_id: str, scale: str = "bench") -> ExperimentReport:
    """Run one experiment by id (``fig9``, ``table2``, ...)."""
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None
    return runner(scale)
