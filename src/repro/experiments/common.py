"""Shared experiment infrastructure.

* :class:`ExperimentScale` — one knob bundle sizing the simulated device
  and trace (``quick`` for tests, ``bench`` for pytest-benchmark runs,
  ``full`` for the CLI).  All scales keep Table I latencies and the
  paper's 64-page blocks; only the device size / trace length change.
* :func:`gc_efficiency_result` — memoized replay of one (workload,
  scheme, policy) combination; Figs 9-13 all reuse these runs.
* :class:`ExperimentReport` — uniform result container with paper-vs-
  measured rows and plain-text rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.config import GeometryConfig, SSDConfig
from repro.device.ssd import RunResult
from repro.metrics.report import format_table
from repro.runner import RunCache, RunSpec, run_specs
from repro.workloads.fiu import build_fiu_trace

#: Workloads of Table II, in the order the paper's figures use.
WORKLOADS: Tuple[str, ...] = ("homes", "web-vm", "mail")


@dataclass(frozen=True)
class ExperimentScale:
    """Device + trace sizing for one fidelity level."""

    name: str
    blocks: int
    pages_per_block: int
    channels: int
    fill_factor: float
    lpn_utilization: float = 0.84
    pool_fraction: float = 0.05

    def config(self, **overrides: Any) -> SSDConfig:
        geometry = GeometryConfig(
            channels=self.channels,
            pages_per_block=self.pages_per_block,
            blocks=self.blocks,
        )
        cfg = SSDConfig(geometry=geometry, **overrides)
        cfg.validate()
        return cfg

    def trace(self, preset: str, config: SSDConfig, **overrides: Any):
        kwargs: Dict[str, Any] = dict(
            n_requests=0,
            fill_factor=self.fill_factor,
            lpn_utilization=self.lpn_utilization,
            pool_fraction=self.pool_fraction,
        )
        kwargs.update(overrides)
        return build_fiu_trace(preset, config, **kwargs)


SCALES: Dict[str, ExperimentScale] = {
    # Tiny: CI-speed integration tests (~0.1 s per run).
    "quick": ExperimentScale(
        name="quick", blocks=128, pages_per_block=32, channels=4, fill_factor=3.0
    ),
    # Benchmarks: enough GC churn for stable ratios (~1 s per run).
    "bench": ExperimentScale(
        name="bench", blocks=256, pages_per_block=64, channels=4, fill_factor=4.0
    ),
    # CLI default: tighter confidence on the reported ratios.
    "full": ExperimentScale(
        name="full", blocks=512, pages_per_block=64, channels=4, fill_factor=5.0
    ),
}


def get_scale(scale: str) -> ExperimentScale:
    try:
        return SCALES[scale]
    except KeyError:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(SCALES)}") from None


#: In-process memo: spec -> RunResult.  Sits in front of the persistent
#: :class:`RunCache`, preserving the old ``lru_cache`` identity semantics
#: (repeated calls return the *same* object) while the persistent layer
#: makes results survive across processes.
_MEMO: Dict[RunSpec, RunResult] = {}
_CACHE: Optional[RunCache] = None
_CACHE_RESOLVED = False


def _persistent_cache() -> Optional[RunCache]:
    """The process-wide persistent cache (``None`` when disabled)."""
    global _CACHE, _CACHE_RESOLVED
    if not _CACHE_RESOLVED:
        _CACHE = RunCache.from_env()
        _CACHE_RESOLVED = True
    return _CACHE


def reset_result_caches() -> None:
    """Drop the in-process memo and re-resolve the persistent cache.

    Test hook: lets a test point ``CAGC_CACHE_DIR`` somewhere fresh (or
    set ``CAGC_NO_CACHE``) after this module was imported.
    """
    global _CACHE_RESOLVED
    _MEMO.clear()
    _CACHE_RESOLVED = False


def result_for(spec: RunSpec) -> RunResult:
    """Result for one spec: memo -> persistent cache -> fresh replay."""
    result = _MEMO.get(spec)
    if result is None:
        result = run_specs([spec], jobs=1, cache=_persistent_cache())[0]
        _MEMO[spec] = result
    return result


def prefetch_results(specs: Sequence[RunSpec], jobs: Optional[int] = None) -> None:
    """Warm the memo + persistent cache for ``specs``, fanning cache
    misses out over ``jobs`` worker processes (the ``--jobs`` path of
    ``cagc-repro run``/``sweep``)."""
    pending = [spec for spec in specs if spec not in _MEMO]
    if not pending:
        return
    for spec, result in zip(pending, run_specs(pending, jobs=jobs, cache=_persistent_cache())):
        _MEMO[spec] = result


def gc_efficiency_result(
    workload: str,
    scheme: str,
    scale: str = "bench",
    policy: str = "greedy",
    seed: int = 0,
) -> RunResult:
    """Replay ``workload`` under ``scheme`` at ``scale`` (cached).

    The cache means Fig 9 (blocks erased), Fig 10 (pages migrated),
    Fig 11 (response time) and Fig 12 (CDF) all share the same nine
    underlying simulations, exactly like the paper reports one run from
    multiple angles.  Results are additionally persisted across
    processes via :class:`repro.runner.RunCache` (seed=0 replays the
    preset's canonical trace; other seeds draw an independent trace with
    the same characteristics — stability runs).
    """
    return result_for(
        RunSpec(workload=workload, scheme=scheme, policy=policy, seed=seed, scale=scale)
    )


def reduction_stability(
    workload: str,
    metric: str = "pages_migrated",
    scale: str = "quick",
    seeds: Tuple[int, ...] = (0, 1, 2),
) -> List[float]:
    """CAGC-vs-Baseline reduction (%) of ``metric`` across seeds.

    ``metric`` is any numeric :class:`RunResult` attribute
    (``blocks_erased``, ``pages_migrated``, ``mean_response_us``).
    Used to check that reported reductions are not one-seed artifacts.
    """
    reductions = []
    for seed in seeds:
        base = gc_efficiency_result(workload, "baseline", scale, seed=seed)
        cagc = gc_efficiency_result(workload, "cagc", scale, seed=seed)
        base_value = float(getattr(base, metric))
        cagc_value = float(getattr(cagc, metric))
        reductions.append(reduction_vs_baseline(base_value, cagc_value))
    return reductions


@dataclass
class ExperimentReport:
    """Uniform experiment output: table rows + raw data + paper notes."""

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]]
    paper_claim: str = ""
    notes: str = ""
    #: machine-readable results for tests / downstream analysis.
    data: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        parts = [
            format_table(self.headers, self.rows, title=f"[{self.experiment_id}] {self.title}")
        ]
        if self.paper_claim:
            parts.append(f"paper: {self.paper_claim}")
        if self.notes:
            parts.append(f"notes: {self.notes}")
        return "\n".join(parts)


def reduction_vs_baseline(baseline: float, other: float) -> float:
    """Percent reduction; 0 when the baseline value is 0."""
    if baseline == 0:
        return 0.0
    return 100.0 * (1.0 - other / baseline)
