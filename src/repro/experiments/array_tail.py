"""Array tail latency vs. GC-coordination policy.

The serving-tier question behind the array tier: on a multi-tenant
SSD array where every device garbage-collects under the same pressure,
how much array-wide tail latency comes purely from GC being
*unsynchronized*?  With independent per-device GC a tenant's request
stream keeps landing on whichever device happens to be mid-collection,
so the p999 inflates even though every single device behaves exactly
like its solo run.  Staggering collection windows round-robin across
devices (or serializing bulk GC behind a global token) bounds how many
devices stall at once and pulls the tail back in.

One run per coordination policy, same workload, same seeds, same
per-device GC stress (the runner scales per-tenant traces so each
device sees the pressure of a single-device run).  Reported per policy:
array-wide p99/p999, the worst per-tenant p999, and the tail inflation
relative to the best coordinated policy.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ExperimentReport, get_scale, result_for
from repro.runner import RunSpec

COORDINATIONS = ("independent", "staggered", "global-token")

#: The committed scenario: 4 tenants on 4 devices, moderate NCQ window.
DEVICES = 4
TENANTS = 4
NCQ_DEPTH = 16


def array_tail_specs(scale: str = "bench") -> Sequence[RunSpec]:
    """The spec fan-out: one array run per coordination policy."""
    get_scale(scale)  # fail fast on unknown scale
    return tuple(
        RunSpec(
            workload="mail",
            scheme="cagc",
            scale=scale,
            array_devices=DEVICES,
            tenants=TENANTS,
            gc_coord=coordination,
            ncq_depth=NCQ_DEPTH,
        )
        for coordination in COORDINATIONS
    )


def run(scale: str = "bench") -> ExperimentReport:
    results = {
        spec.gc_coord: result_for(spec) for spec in array_tail_specs(scale)
    }
    coordinated_p999 = min(
        results[c].percentile(99.9) for c in COORDINATIONS if c != "independent"
    )
    rows = []
    data: dict = {"p99": {}, "p999": {}, "worst_tenant_p999": {}, "inflation": {}}
    for coordination in COORDINATIONS:
        result = results[coordination]
        p99 = result.percentile(99.0)
        p999 = result.percentile(99.9)
        worst_tenant = max(
            values[-1] for _, values in result.telemetry.tenant_percentiles()
        )
        inflation = p999 / coordinated_p999 if coordinated_p999 > 0 else 1.0
        rows.append(
            (
                coordination,
                f"{p99:.0f}us",
                f"{p999:.0f}us",
                f"{worst_tenant:.0f}us",
                f"{inflation:.2f}x",
            )
        )
        data["p99"][coordination] = p99
        data["p999"][coordination] = p999
        data["worst_tenant_p999"][coordination] = worst_tenant
        data["inflation"][coordination] = inflation
    return ExperimentReport(
        experiment_id="array-tail",
        title=(
            f"Array-wide tail latency vs GC coordination "
            f"({DEVICES} devices, {TENANTS} tenants, mail/cagc)"
        ),
        headers=(
            "Coordination",
            "p99",
            "p999",
            "Worst tenant p999",
            "Tail vs coordinated",
        ),
        rows=rows,
        paper_claim=(
            "Unsynchronized per-device GC inflates array-wide p999; "
            "staggered windows or a global GC token bound concurrent "
            "stalls and restore the tail"
        ),
        data=data,
    )
