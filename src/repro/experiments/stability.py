"""Seed-stability report for the headline results (Figs 9-11).

Each reduction in the paper comes from one trace replay; this
experiment re-draws the synthetic traces under independent seeds and
reports mean ± std of CAGC's reduction per workload and metric,
confirming the headline numbers are properties of the workload
*characteristics*, not of one particular trace realization.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import (
    WORKLOADS,
    ExperimentReport,
    reduction_stability,
)

METRICS = (
    ("blocks_erased", "Fig 9"),
    ("pages_migrated", "Fig 10"),
    ("mean_response_us", "Fig 11"),
)

SEEDS = (0, 1, 2)


def run(scale: str = "bench") -> ExperimentReport:
    rows = []
    data: dict = {}
    for workload in WORKLOADS:
        data[workload] = {}
        for metric, figure in METRICS:
            reductions = reduction_stability(workload, metric, scale, SEEDS)
            mean = float(np.mean(reductions))
            std = float(np.std(reductions))
            rows.append(
                (
                    workload,
                    figure,
                    metric,
                    f"{mean:.1f}%",
                    f"{std:.1f}",
                    f"{min(reductions):.1f}%",
                )
            )
            data[workload][metric] = {
                "mean_pct": mean,
                "std_pct": std,
                "per_seed": reductions,
            }
    return ExperimentReport(
        experiment_id="stability",
        title=f"CAGC-vs-Baseline reductions across {len(SEEDS)} independent trace seeds",
        headers=("Workload", "Figure", "Metric", "Mean cut", "Std", "Worst seed"),
        rows=rows,
        notes="all reductions must stay positive on every seed",
        data=data,
    )
