"""Fig 12 — response-time CDFs: Baseline vs CAGC.

The paper plots the empirical CDF of request response times per
workload: CAGC's curve sits left of (above) Baseline's everywhere, with
the largest separation under Mail — GC-induced stalls are both rarer
and shorter.  We report quantiles plus first-order stochastic dominance
checks over the full curves.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import (
    WORKLOADS,
    ExperimentReport,
    gc_efficiency_result,
)
from repro.metrics.cdf import cdf_at, empirical_cdf


def run(scale: str = "bench") -> ExperimentReport:
    rows = []
    data = {}
    for workload in WORKLOADS:
        base = gc_efficiency_result(workload, "baseline", scale)
        cagc = gc_efficiency_result(workload, "cagc", scale)
        bs = base.response_times_us
        cs = cagc.response_times_us
        # Dominance: at a grid of latencies, CAGC's CDF >= Baseline's.
        grid = np.percentile(np.concatenate([bs, cs]), np.linspace(1, 99, 25))
        dominance = float(
            np.mean([cdf_at(cs, x) >= cdf_at(bs, x) - 1e-9 for x in grid])
        )
        p50b, p80b, p99b = np.percentile(bs, [50, 80, 99])
        p50c, p80c, p99c = np.percentile(cs, [50, 80, 99])
        rows.append(
            (
                workload,
                f"{p50b:.0f}/{p50c:.0f}",
                f"{p80b:.0f}/{p80c:.0f}",
                f"{p99b:.0f}/{p99c:.0f}",
                f"{dominance:.0%}",
            )
        )
        xs_b, fs_b = empirical_cdf(bs, points=100)
        xs_c, fs_c = empirical_cdf(cs, points=100)
        data[workload] = {
            "baseline_percentiles_us": {"p50": float(p50b), "p80": float(p80b), "p99": float(p99b)},
            "cagc_percentiles_us": {"p50": float(p50c), "p80": float(p80c), "p99": float(p99c)},
            "dominance_fraction": dominance,
            "baseline_cdf": (xs_b.tolist(), fs_b.tolist()),
            "cagc_cdf": (xs_c.tolist(), fs_c.tolist()),
        }
    return ExperimentReport(
        experiment_id="fig12",
        title="Response-time CDF quantiles, Baseline/CAGC (us)",
        headers=("Workload", "p50 B/C", "p80 B/C", "p99 B/C", "CAGC dominates"),
        rows=rows,
        paper_claim=(
            "CAGC's CDF dominates Baseline's for all three workloads; "
            "largest tail gap on Mail"
        ),
        data=data,
    )
