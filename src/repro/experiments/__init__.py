"""Experiment harness: one module per paper table/figure.

Every experiment returns an :class:`~repro.experiments.common.ExperimentReport`
whose rows mirror the corresponding paper plot, alongside the paper's
reported values so the shape comparison is explicit.

>>> from repro.experiments import run_experiment
>>> report = run_experiment("fig9", scale="quick")   # doctest: +SKIP
>>> print(report)                                     # doctest: +SKIP
"""

from repro.experiments.common import (
    ExperimentReport,
    ExperimentScale,
    SCALES,
    gc_efficiency_result,
)
from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = [
    "ExperimentReport",
    "ExperimentScale",
    "SCALES",
    "EXPERIMENTS",
    "run_experiment",
    "gc_efficiency_result",
]
