"""Fig 6 — which reference counts do invalid pages come from?

The paper's empirical justification for refcount placement: across the
FIU traces, more than 80 % of page invalidations hit pages whose
reference count (number of sharers) was 1, while pages that ever
reached a count above 3 account for under 1 % — high-refcount pages are
effectively immortal.

This analysis needs only dedup semantics, not the full SSD: we replay
each workload's write stream through a content-resolution model (LPN ->
content; content -> referrer count) and bucket every content-death
event by the content's lifetime peak refcount.
"""

from __future__ import annotations

from typing import Dict

from repro.dedup.refcount import InvalidationHistogram, RefcountTracker
from repro.experiments.common import WORKLOADS, ExperimentReport, get_scale
from repro.workloads.request import OpKind
from repro.workloads.trace import Trace


def refcount_invalidation_histogram(trace: Trace) -> InvalidationHistogram:
    """Replay ``trace``'s writes under dedup semantics; histogram
    content-death events by lifetime peak refcount."""
    tracker = RefcountTracker()
    lpn_content: Dict[int, int] = {}
    refcount: Dict[int, int] = {}
    write = int(OpKind.WRITE)
    trim = int(OpKind.TRIM)

    def drop_ref(fp: int) -> None:
        refcount[fp] -= 1
        if refcount[fp] == 0:
            del refcount[fp]
            tracker.invalidated(fp)

    for _, op, lpn, npages, fps in trace.iter_rows():
        if op == write:
            for offset in range(npages):
                fp = int(fps[offset])
                cur = lpn + offset
                old = lpn_content.get(cur)
                lpn_content[cur] = fp
                refcount[fp] = refcount.get(fp, 0) + 1
                tracker.observe(fp, refcount[fp])
                if old is not None:
                    drop_ref(old)
        elif op == trim:
            for offset in range(npages):
                old = lpn_content.pop(lpn + offset, None)
                if old is not None:
                    drop_ref(old)
    return tracker.histogram


def run(scale: str = "bench") -> ExperimentReport:
    sc = get_scale(scale)
    config = sc.config()
    rows = []
    data = {}
    fractions_sum = [0.0, 0.0, 0.0, 0.0]
    for workload in WORKLOADS:
        trace = sc.trace(workload, config)
        hist = refcount_invalidation_histogram(trace)
        f1, f2, f3, fg = hist.fractions()
        rows.append((workload, f"{f1:.1%}", f"{f2:.1%}", f"{f3:.1%}", f"{fg:.1%}"))
        data[workload] = {"1": f1, "2": f2, "3": f3, ">3": fg, "total": hist.total}
        for i, f in enumerate((f1, f2, f3, fg)):
            fractions_sum[i] += f
    avg = [f / len(WORKLOADS) for f in fractions_sum]
    rows.append(("average", f"{avg[0]:.1%}", f"{avg[1]:.1%}", f"{avg[2]:.1%}", f"{avg[3]:.1%}"))
    data["average"] = {"1": avg[0], "2": avg[1], "3": avg[2], ">3": avg[3]}
    return ExperimentReport(
        experiment_id="fig6",
        title="Invalid pages by lifetime reference count",
        headers=("Workload", "ref=1", "ref=2", "ref=3", "ref>3"),
        rows=rows,
        paper_claim=">80% of invalid pages come from refcount-1 pages; <1% from refcount>3",
        data=data,
    )
