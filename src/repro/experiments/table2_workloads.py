"""Table II — workload characteristics of the three FIU traces.

Generates each synthetic preset at the requested scale and measures its
write ratio, dedup ratio and mean request size, against the paper's
Table II targets.  This validates that the synthetic substitution for
the non-redistributable FIU traces reproduces the first-order
characteristics the paper's conclusions rest on.
"""

from __future__ import annotations

from repro.experiments.common import WORKLOADS, ExperimentReport, get_scale

#: Table II of the paper.
PAPER_TABLE2 = {
    "mail": {"write_ratio": 0.698, "dedup_ratio": 0.893, "avg_req_kb": 14.8},
    "homes": {"write_ratio": 0.805, "dedup_ratio": 0.300, "avg_req_kb": 13.1},
    "web-vm": {"write_ratio": 0.785, "dedup_ratio": 0.493, "avg_req_kb": 40.8},
}


def run(scale: str = "bench") -> ExperimentReport:
    sc = get_scale(scale)
    config = sc.config()
    rows = []
    data = {}
    for workload in WORKLOADS:
        trace = sc.trace(workload, config)
        stats = trace.stats()
        paper = PAPER_TABLE2[workload]
        rows.append(
            (
                workload,
                f"{paper['write_ratio']:.1%}",
                f"{stats.write_ratio:.1%}",
                f"{paper['dedup_ratio']:.1%}",
                f"{stats.dedup_ratio:.1%}",
                f"{paper['avg_req_kb']:.1f}KB",
                f"{stats.avg_req_kb:.1f}KB",
            )
        )
        data[workload] = {
            "write_ratio": stats.write_ratio,
            "dedup_ratio": stats.dedup_ratio,
            "avg_req_kb": stats.avg_req_kb,
            "requests": stats.requests,
            "written_pages": stats.written_pages,
        }
    return ExperimentReport(
        experiment_id="table2",
        title="Workload characteristics (synthetic presets vs paper Table II)",
        headers=(
            "Trace",
            "WR paper",
            "WR ours",
            "Dedup paper",
            "Dedup ours",
            "Req paper",
            "Req ours",
        ),
        rows=rows,
        paper_claim="Mail 69.8%/89.3%/14.8KB; Homes 80.5%/30.0%/13.1KB; Web-vm 78.5%/49.3%/40.8KB",
        notes=(
            "dedup ratio runs slightly under target at small scales: the "
            "popular-content pool's first occurrences count as unique"
        ),
        data=data,
    )
