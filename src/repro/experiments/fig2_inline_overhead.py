"""Fig 2 — inline dedup degrades ULL SSD response time.

The paper's motivation experiment: on a Samsung Z-NAND device (light
utilization, GC quiet — a preliminary microbenchmark, not the GC-churn
setup of Figs 9-12), adding inline dedup raises response latency by up
to 71.9 % (average 43.1 %) because every write pays hash + lookup
serially before the (very fast) flash program.

We reproduce it by replaying short traces on a mostly-empty device so
GC never triggers: the measured overhead is then purely the
deduplication critical-path cost.  The GC-quiet regime is expressed as
``trace_overrides`` on the shared :class:`~repro.runner.RunSpec`, so
the runs participate in the persistent cache and ``--jobs`` prewarm.
"""

from __future__ import annotations

from typing import List

from repro.experiments.common import ExperimentReport, result_for
from repro.runner import RunSpec, freeze_overrides

#: Fig 2 uses Homes, Webmail and Mail.
FIG2_WORKLOADS = ("homes", "webmail", "mail")

#: normalized Inline-Dedupe response times eyeballed from the paper's
#: Fig 2 bars (Baseline = 1.0).
PAPER_NORMALIZED = {"homes": 1.7, "webmail": 1.5, "mail": 1.3}

#: Light-utilization regime: short trace (half-fill), small LPN
#: footprint -> the device never reaches the GC watermark.
_GC_QUIET = freeze_overrides(fill_factor=0.5, lpn_utilization=0.5)


def fig2_specs(scale: str) -> List[RunSpec]:
    return [
        RunSpec(workload=workload, scheme=scheme, scale=scale,
                trace_overrides=_GC_QUIET)
        for workload in FIG2_WORKLOADS
        for scheme in ("baseline", "inline-dedupe")
    ]


def run(scale: str = "bench") -> ExperimentReport:
    rows = []
    data = {}
    for workload in FIG2_WORKLOADS:
        results = {
            scheme: result_for(
                RunSpec(workload=workload, scheme=scheme, scale=scale,
                        trace_overrides=_GC_QUIET)
            )
            for scheme in ("baseline", "inline-dedupe")
        }
        base = results["baseline"].latency.mean_us
        inline = results["inline-dedupe"].latency.mean_us
        normalized = inline / base if base else 0.0
        rows.append(
            (
                workload,
                1.0,
                round(normalized, 3),
                round(PAPER_NORMALIZED[workload], 2),
                f"{base:.1f}us",
                f"{inline:.1f}us",
            )
        )
        data[workload] = {
            "baseline_mean_us": base,
            "inline_mean_us": inline,
            "normalized": normalized,
            "gc_bursts_baseline": results["baseline"].gc.gc_invocations,
        }
    increases = [d["normalized"] - 1.0 for d in data.values()]
    data["max_increase_pct"] = 100.0 * max(increases)
    data["avg_increase_pct"] = 100.0 * sum(increases) / len(increases)
    return ExperimentReport(
        experiment_id="fig2",
        title="Normalized response time with inline dedup (GC-quiet device)",
        headers=(
            "Workload",
            "Baseline",
            "Inline (ours)",
            "Inline (paper)",
            "Base mean",
            "Inline mean",
        ),
        rows=rows,
        paper_claim="inline dedup raises latency up to 71.9%, 43.1% on average",
        notes=(
            f"measured: max +{data['max_increase_pct']:.1f}%, "
            f"avg +{data['avg_increase_pct']:.1f}%"
        ),
        data=data,
    )
