"""Fig 8 — the worked four-file example.

The paper walks one tiny scenario through both GC schemes: four files
(File1 = A B C D, File2 = E B F, File3 = D A B, File4 = B G) are
written, space pressure forces a compaction GC, then Files 2 and 4 are
deleted.  Traditional GC rewrites every valid page (12 page writes) and
keeps duplicate content; CAGC writes each unique content once (7 page
writes: A..G) and deletion mostly just decrements reference counts.

We replay exactly that scenario on a 4-pages-per-block device.  The
compaction is forced by collecting every full block (the paper's GC is
triggered by space pressure; victim *selection* is not the point of
this figure).
"""

from __future__ import annotations

from typing import Dict, List

from repro.config import GeometryConfig, SSDConfig
from repro.experiments.common import ExperimentReport
from repro.oracle.invariants import check_all
from repro.schemes import make_scheme
from repro.workloads.filemodel import FileModelTrace
from repro.workloads.request import OpKind

#: The four files of Fig 8, pages named by content letter.
FIG8_FILES = {
    "file1": ["A", "B", "C", "D"],
    "file2": ["E", "B", "F"],
    "file3": ["D", "A", "B"],
    "file4": ["B", "G"],
}


def _example_config() -> SSDConfig:
    geometry = GeometryConfig(channels=1, pages_per_block=4, blocks=16)
    return SSDConfig(geometry=geometry, cold_threshold=2, cold_region_ratio=0.5)


def _force_compaction(scheme) -> None:
    """Collect every full, inactive block (space-pressure compaction).

    The victim set is snapshotted up front so blocks that fill up with
    migrated pages during the compaction are not re-collected.
    """
    flash = scheme.flash
    victims = [
        block
        for block in range(flash.blocks)
        if not scheme.allocator.is_active(block)
        and flash.write_ptr[block] == flash.pages_per_block
    ]
    for block in victims:
        scheme.collect_block(block, now_us=0.0)


def run_scenario(scheme_name: str) -> Dict[str, int]:
    """Run the Fig 8 scenario under one scheme; return the counters."""
    config = _example_config()
    scheme = make_scheme(scheme_name, config)
    builder = FileModelTrace()
    for name, pages in FIG8_FILES.items():
        builder.write_file(name, pages)
    builder.delete_file("file2").delete_file("file4")
    live_after_gc = 0
    compacted = False
    for _, op, lpn, npages, fps in builder.build().iter_rows():
        if op == int(OpKind.WRITE):
            scheme.write_request(lpn, fps, now_us=0.0)
        else:
            if not compacted:
                # Space pressure hits after the four files are written
                # and before the deletions (the order of Fig 8).
                _force_compaction(scheme)
                live_after_gc = len(scheme.page_fp)
                compacted = True
            scheme.trim_request(lpn, npages, now_us=0.0)
    promotions = scheme.gc_counters.promotions
    gc_writes = scheme.gc_counters.pages_migrated - promotions
    gc_erases = scheme.gc_counters.blocks_erased
    live_after_delete = len(scheme.page_fp)
    check_all(scheme)
    return {
        "gc_page_writes": gc_writes,
        "promotion_copies": promotions,
        "gc_blocks_erased": gc_erases,
        "physical_pages_after_gc": live_after_gc,
        "physical_pages_after_delete": live_after_delete,
        "pages_freed_by_delete": live_after_gc - live_after_delete,
    }


def run(scale: str = "bench") -> ExperimentReport:
    rows: List[List[object]] = []
    data = {}
    for scheme_name, label in (("baseline", "traditional"), ("cagc", "CAGC")):
        r = run_scenario(scheme_name)
        data[label] = r
        rows.append(
            [
                label,
                r["gc_page_writes"],
                r["promotion_copies"],
                r["gc_blocks_erased"],
                r["physical_pages_after_gc"],
                r["physical_pages_after_delete"],
            ]
        )
    return ExperimentReport(
        experiment_id="fig8",
        title="Worked example: write 4 files, compact, delete files 2 & 4",
        headers=(
            "Scheme",
            "GC page writes",
            "Promotions",
            "GC erases",
            "phys pages after GC",
            "after delete",
        ),
        rows=rows,
        paper_claim=(
            "traditional GC: 12 page writes; CAGC: 7 page writes (one per "
            "unique content A-G) and fewer live physical pages throughout"
        ),
        notes=(
            "erase counts depend on block packing; the paper's cartoon packs "
            "12 pages into blocks differently than an append-only allocator"
        ),
        data=data,
    )
