"""Fig 13 — sensitivity to the victim-selection algorithm.

The paper re-runs the Baseline-vs-CAGC comparison under Random, Greedy
and Cost-Benefit victim policies and reports CAGC's reduction in blocks
erased, pages migrated and response time under each — the claim being
that CAGC composes with any victim selector and always wins.
"""

from __future__ import annotations

from repro.experiments.common import (
    WORKLOADS,
    ExperimentReport,
    gc_efficiency_result,
    reduction_vs_baseline,
)

POLICIES = ("random", "greedy", "cost-benefit")


def run(scale: str = "bench") -> ExperimentReport:
    rows = []
    data: dict = {m: {} for m in ("blocks_erased", "pages_migrated", "response")}
    for workload in WORKLOADS:
        for policy in POLICIES:
            base = gc_efficiency_result(workload, "baseline", scale, policy=policy)
            cagc = gc_efficiency_result(workload, "cagc", scale, policy=policy)
            r_erased = reduction_vs_baseline(base.blocks_erased, cagc.blocks_erased)
            r_migrated = reduction_vs_baseline(base.pages_migrated, cagc.pages_migrated)
            r_resp = reduction_vs_baseline(base.latency.mean_us, cagc.latency.mean_us)
            rows.append(
                (
                    workload,
                    policy,
                    f"{r_erased:.1f}%",
                    f"{r_migrated:.1f}%",
                    f"{r_resp:.1f}%",
                )
            )
            data["blocks_erased"].setdefault(workload, {})[policy] = r_erased
            data["pages_migrated"].setdefault(workload, {})[policy] = r_migrated
            data["response"].setdefault(workload, {})[policy] = r_resp
    return ExperimentReport(
        experiment_id="fig13",
        title="CAGC's reductions under each victim-selection policy",
        headers=("Workload", "Policy", "Blocks erased", "Pages migrated", "Response"),
        rows=rows,
        paper_claim=(
            "CAGC reduces blocks erased, pages migrated and response time "
            "under Random, Greedy and Cost-Benefit alike"
        ),
        data=data,
    )
