"""Fig 10 — valid pages migrated during GC: Baseline vs CAGC.

The paper reports CAGC migrating 35.1 % / 47.9 % / 85.9 % fewer pages
than Baseline under Homes / Web-vm / Mail.  This is the metric our
reproduction matches most directly: GC-time dedup skips rewriting any
page whose content already has a canonical copy, and refcount placement
keeps immortal pages out of future victims.
"""

from __future__ import annotations

from repro.experiments.common import (
    WORKLOADS,
    ExperimentReport,
    gc_efficiency_result,
    reduction_vs_baseline,
)

PAPER_REDUCTION_PCT = {"homes": 35.1, "web-vm": 47.9, "mail": 85.9}


def run(scale: str = "bench") -> ExperimentReport:
    rows = []
    data = {}
    for workload in WORKLOADS:
        base = gc_efficiency_result(workload, "baseline", scale)
        cagc = gc_efficiency_result(workload, "cagc", scale)
        reduction = reduction_vs_baseline(base.pages_migrated, cagc.pages_migrated)
        rows.append(
            (
                workload,
                base.pages_migrated,
                cagc.pages_migrated,
                f"{reduction:.1f}%",
                f"{PAPER_REDUCTION_PCT[workload]:.1f}%",
            )
        )
        data[workload] = {
            "baseline": base.pages_migrated,
            "cagc": cagc.pages_migrated,
            "dedup_skipped": cagc.gc.dedup_skipped,
            "reduction_pct": reduction,
            "paper_reduction_pct": PAPER_REDUCTION_PCT[workload],
        }
    return ExperimentReport(
        experiment_id="fig10",
        title="Data pages migrated during GC (Baseline vs CAGC, greedy policy)",
        headers=("Workload", "Baseline", "CAGC", "Reduction", "Paper"),
        rows=rows,
        paper_claim="CAGC migrates 35.1%/47.9%/85.9% fewer pages (Homes/Web-vm/Mail)",
        data=data,
    )
