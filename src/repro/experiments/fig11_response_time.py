"""Fig 11 — normalized mean response time: Inline-Dedupe / Baseline / CAGC.

The paper reports CAGC cutting the mean response time during GC periods
by 33.6 % / 29.6 % / 70.1 % versus Baseline (Homes / Web-vm / Mail),
with Inline-Dedupe *above* Baseline for the moderate-dedup workloads.

In our simulator CAGC's reduction reproduces; Inline-Dedupe's position
depends on how much GC pressure the regime has (its hash tax competes
against the GC traffic its write reduction removes) — at this scale it
lands at or below Baseline for high-dedup workloads, as discussed in
EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.experiments.common import (
    WORKLOADS,
    ExperimentReport,
    gc_efficiency_result,
    reduction_vs_baseline,
)

PAPER_CAGC_REDUCTION_PCT = {"homes": 33.6, "web-vm": 29.6, "mail": 70.1}


def run(scale: str = "bench") -> ExperimentReport:
    rows = []
    data = {}
    for workload in WORKLOADS:
        base = gc_efficiency_result(workload, "baseline", scale)
        inline = gc_efficiency_result(workload, "inline-dedupe", scale)
        cagc = gc_efficiency_result(workload, "cagc", scale)
        b = base.latency.mean_us
        reduction = reduction_vs_baseline(b, cagc.latency.mean_us)
        rows.append(
            (
                workload,
                f"{inline.latency.mean_us / b:.2f}" if b else "-",
                "1.00",
                f"{cagc.latency.mean_us / b:.2f}" if b else "-",
                f"{reduction:.1f}%",
                f"{PAPER_CAGC_REDUCTION_PCT[workload]:.1f}%",
            )
        )
        data[workload] = {
            "baseline_mean_us": b,
            "inline_mean_us": inline.latency.mean_us,
            "cagc_mean_us": cagc.latency.mean_us,
            "cagc_reduction_pct": reduction,
            "paper_reduction_pct": PAPER_CAGC_REDUCTION_PCT[workload],
        }
    return ExperimentReport(
        experiment_id="fig11",
        title="Normalized mean response time (Inline-Dedupe / Baseline / CAGC)",
        headers=("Workload", "Inline", "Baseline", "CAGC", "CAGC cut", "Paper"),
        rows=rows,
        paper_claim="CAGC cuts mean response by 33.6%/29.6%/70.1% (Homes/Web-vm/Mail)",
        data=data,
    )
