"""Table I — the simulated SSD configuration.

Verifies the library's paper-faithful defaults against the values
printed in the paper's Table I.
"""

from __future__ import annotations

from repro.config import paper_config
from repro.experiments.common import ExperimentReport


def run(scale: str = "bench") -> ExperimentReport:
    cfg = paper_config()
    geometry = cfg.geometry
    timing = cfg.timing
    rows = [
        ("Page Size", "4KB", f"{geometry.page_size // 1024}KB"),
        ("Block Size", "256KB", f"{geometry.block_size // 1024}KB"),
        ("OP Space", "7%", f"{cfg.op_ratio:.0%}"),
        ("Capacity", "80GB", f"{geometry.physical_bytes // 2**30}GB"),
        ("Read", "12us", f"{timing.read_us:g}us"),
        ("Write", "16us", f"{timing.write_us:g}us"),
        ("Erase Delay", "1.5ms", f"{timing.erase_us / 1000:g}ms"),
        ("Hash", "14us", f"{timing.hash_us:g}us"),
        ("GC Watermark", "20%", f"{cfg.gc_watermark:.0%}"),
    ]
    matches = all(paper == ours for _, paper, ours in rows)
    return ExperimentReport(
        experiment_id="table1",
        title="SSD configuration (paper Table I vs repro.config.paper_config)",
        headers=("Parameter", "Paper", "This repo"),
        rows=rows,
        paper_claim="Table I parameters of the simulated Z-NAND class device",
        notes="exact match" if matches else "MISMATCH — check repro.config defaults",
        data={"matches": matches},
    )
