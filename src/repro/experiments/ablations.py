"""Ablations beyond the paper — the design knobs DESIGN.md calls out.

* **A1 threshold** — sweep the cold-region reference-count threshold.
* **A2 placement** — CAGC with hot/cold placement disabled (dedup-only)
  versus full CAGC: how much of the win is placement vs GC-time dedup?
* **A3 hash latency** — sweep the hash engine's latency and find where
  inline dedup stops hurting a ULL device (the paper's motivation says
  never, for realistic SHA latencies).
* **A4 OP space** — over-provisioning sensitivity of the CAGC win.

Every ablation decomposes into :class:`~repro.runner.RunSpec` work
units (``*_specs`` functions, also consumed by the experiment registry
for ``--jobs`` prewarming), so results land in the shared persistent
cache; sweep points that coincide with the config defaults reuse the
plain specs behind Figs 9-13.
"""

from __future__ import annotations

from typing import List

from repro.experiments.common import (
    ExperimentReport,
    reduction_vs_baseline,
    result_for,
)
from repro.runner import RunSpec, freeze_overrides

#: Ablations run on the workload where each knob matters most.
ABLATION_WORKLOAD = "mail"

#: A1 sweep points (2 is the config default: any shared page is cold).
THRESHOLDS = (2, 3, 4, 8)
#: A3 sweep points (14 us is the paper's firmware SHA).
HASH_LATENCIES_US = (0.0, 2.0, 7.0, 14.0, 28.0)
#: A4 sweep points (0.07 is the config default).
OP_RATIOS = (0.07, 0.15, 0.25)
#: A7 sweep points (0 = no buffer, the default).
BUFFER_PAGES = (0, 256, 1024, 4096)
#: A9 sweep points (the scales default to 4 channels).
CHANNEL_COUNTS = (1, 2, 4, 8)

#: A3/fig2's GC-quiet regime: short trace, small LPN footprint.
_GC_QUIET = freeze_overrides(fill_factor=0.5, lpn_utilization=0.5)


def _threshold_spec(threshold: int, scale: str) -> RunSpec:
    overrides = freeze_overrides(cold_threshold=threshold) if threshold != 2 else ()
    return RunSpec(
        workload=ABLATION_WORKLOAD, scheme="cagc", scale=scale,
        config_overrides=overrides,
    )


def threshold_specs(scale: str) -> List[RunSpec]:
    return [RunSpec(workload=ABLATION_WORKLOAD, scheme="baseline", scale=scale)] + [
        _threshold_spec(t, scale) for t in THRESHOLDS
    ]


def run_threshold(scale: str = "bench") -> ExperimentReport:
    """A1: cold threshold sweep (refcount >= t goes cold)."""
    base = result_for(RunSpec(workload=ABLATION_WORKLOAD, scheme="baseline", scale=scale))
    rows = []
    data = {}
    for threshold in THRESHOLDS:
        result = result_for(_threshold_spec(threshold, scale))
        r_erased = reduction_vs_baseline(base.blocks_erased, result.blocks_erased)
        r_migr = reduction_vs_baseline(base.pages_migrated, result.pages_migrated)
        rows.append((threshold, result.blocks_erased, f"{r_erased:.1f}%", f"{r_migr:.1f}%"))
        data[threshold] = {
            "blocks_erased": result.blocks_erased,
            "erase_reduction_pct": r_erased,
            "migration_reduction_pct": r_migr,
        }
    return ExperimentReport(
        experiment_id="ablation-threshold",
        title=f"Cold-region refcount threshold sweep ({ABLATION_WORKLOAD})",
        headers=("Threshold", "Blocks erased", "Erase cut", "Migration cut"),
        rows=rows,
        notes="paper uses 'e.g., 1' (our threshold=2: any shared page is cold)",
        data=data,
    )


_NO_PLACEMENT = freeze_overrides(placement="never-cold")


def placement_specs(scale: str) -> List[RunSpec]:
    specs = []
    for workload in ("homes", "mail"):
        specs.append(RunSpec(workload=workload, scheme="baseline", scale=scale))
        specs.append(RunSpec(workload=workload, scheme="cagc", scale=scale))
        specs.append(
            RunSpec(workload=workload, scheme="cagc", scale=scale,
                    scheme_options=_NO_PLACEMENT)
        )
    return specs


def run_placement(scale: str = "bench") -> ExperimentReport:
    """A2: full CAGC vs dedup-only CAGC (no hot/cold separation)."""
    rows = []
    data = {}
    for workload in ("homes", "mail"):
        base = result_for(RunSpec(workload=workload, scheme="baseline", scale=scale))
        full = result_for(RunSpec(workload=workload, scheme="cagc", scale=scale))
        dedup_only = result_for(
            RunSpec(workload=workload, scheme="cagc", scale=scale,
                    scheme_options=_NO_PLACEMENT)
        )
        r_full = reduction_vs_baseline(base.pages_migrated, full.pages_migrated)
        r_dedup = reduction_vs_baseline(base.pages_migrated, dedup_only.pages_migrated)
        e_full = reduction_vs_baseline(base.blocks_erased, full.blocks_erased)
        e_dedup = reduction_vs_baseline(base.blocks_erased, dedup_only.blocks_erased)
        rows.append(
            (workload, f"{r_dedup:.1f}%", f"{r_full:.1f}%", f"{e_dedup:.1f}%", f"{e_full:.1f}%")
        )
        data[workload] = {
            "dedup_only_migration_cut_pct": r_dedup,
            "full_migration_cut_pct": r_full,
            "dedup_only_erase_cut_pct": e_dedup,
            "full_erase_cut_pct": e_full,
        }
    return ExperimentReport(
        experiment_id="ablation-placement",
        title="Dedup-only CAGC vs full CAGC (with refcount placement)",
        headers=("Workload", "Migr cut (dedup)", "Migr (full)", "Erase (dedup)", "Erase (full)"),
        rows=rows,
        notes=(
            "in this trace model the placement delta is small — GC-time "
            "dedup itself provides nearly all of CAGC's win, because the "
            "deduplicated cold set is compact; see EXPERIMENTS.md"
        ),
        data=data,
    )


def _hash_latency_spec(scheme: str, hash_us: float, scale: str) -> RunSpec:
    return RunSpec(
        workload="homes", scheme=scheme, scale=scale,
        config_overrides=freeze_overrides({"timing.hash_us": hash_us}),
        trace_overrides=_GC_QUIET,
    )


def hash_latency_specs(scale: str) -> List[RunSpec]:
    return [
        _hash_latency_spec(scheme, hash_us, scale)
        for hash_us in HASH_LATENCIES_US
        for scheme in ("baseline", "inline-dedupe")
    ]


def run_hash_latency(scale: str = "bench") -> ExperimentReport:
    """A3: where does inline dedup stop hurting? (GC-quiet regime)"""
    rows = []
    data = {}
    for hash_us in HASH_LATENCIES_US:
        base = result_for(_hash_latency_spec("baseline", hash_us, scale))
        inline = result_for(_hash_latency_spec("inline-dedupe", hash_us, scale))
        normalized = (
            inline.latency.mean_us / base.latency.mean_us
            if base.latency.mean_us
            else 0.0
        )
        rows.append((f"{hash_us:g}us", f"{normalized:.3f}"))
        data[hash_us] = normalized
    return ExperimentReport(
        experiment_id="ablation-hash-latency",
        title="Inline-Dedupe normalized response vs hash latency (homes, GC-quiet)",
        headers=("Hash latency", "Inline/Baseline"),
        rows=rows,
        notes=(
            "at 0 us the schemes tie (a hash coprocessor would close the "
            "gap); at SHA-class latencies inline dedup hurts a ULL device"
        ),
        data=data,
    )


def _channels_spec(channels: int, scale: str) -> RunSpec:
    return RunSpec(
        workload="homes", scheme="cagc", scale=scale,
        config_overrides=freeze_overrides({"geometry.channels": channels}),
        device="parallel",
    )


def channels_specs(scale: str) -> List[RunSpec]:
    return [_channels_spec(c, scale) for c in CHANNEL_COUNTS]


def run_channels(scale: str = "bench") -> ExperimentReport:
    """A9: channel-level parallelism (related work: parallel GC, SC'16).

    Replays homes on the channel-parallel controller with 1/2/4/8
    channels: queueing delay falls with channel count and GC bursts
    stall only their own channel.
    """
    rows = []
    data = {}
    for channels in CHANNEL_COUNTS:
        result = result_for(_channels_spec(channels, scale))
        rows.append(
            (
                channels,
                f"{result.latency.mean_us:.0f}us",
                f"{result.latency.p99_us:.0f}us",
                result.blocks_erased,
            )
        )
        data[channels] = {
            "mean_us": result.latency.mean_us,
            "p99_us": result.latency.p99_us,
            "blocks_erased": result.blocks_erased,
        }
    return ExperimentReport(
        experiment_id="ablation-channels",
        title="Channel-parallel controller: channel-count sweep (homes, CAGC)",
        headers=("Channels", "Mean resp", "p99", "Erases"),
        rows=rows,
        notes="GC stalls one channel; the rest keep serving (parallel-GC effect)",
        data=data,
    )


_HOT_FIRST = freeze_overrides(prefer_hot_victims=True)


def hot_victims_specs(scale: str) -> List[RunSpec]:
    specs = []
    for policy_name in ("greedy", "cost-benefit"):
        specs.append(
            RunSpec(workload=ABLATION_WORKLOAD, scheme="cagc", policy=policy_name,
                    scale=scale)
        )
        specs.append(
            RunSpec(workload=ABLATION_WORKLOAD, scheme="cagc", policy=policy_name,
                    scale=scale, scheme_options=_HOT_FIRST)
        )
    return specs


def run_hot_victims(scale: str = "bench") -> ExperimentReport:
    """A8: hot-first victim preference (section III-C's 'desirable
    candidates') on top of each base victim policy."""
    rows = []
    data = {}
    for policy_name in ("greedy", "cost-benefit"):
        plain = result_for(
            RunSpec(workload=ABLATION_WORKLOAD, scheme="cagc", policy=policy_name,
                    scale=scale)
        )
        hot_first = result_for(
            RunSpec(workload=ABLATION_WORKLOAD, scheme="cagc", policy=policy_name,
                    scale=scale, scheme_options=_HOT_FIRST)
        )
        rows.append(
            (
                policy_name,
                plain.pages_migrated,
                hot_first.pages_migrated,
                plain.blocks_erased,
                hot_first.blocks_erased,
            )
        )
        data[policy_name] = {
            "plain_migrated": plain.pages_migrated,
            "hot_first_migrated": hot_first.pages_migrated,
            "plain_erased": plain.blocks_erased,
            "hot_first_erased": hot_first.blocks_erased,
        }
    return ExperimentReport(
        experiment_id="ablation-hot-victims",
        title="CAGC with hot-first victim preference (mail)",
        headers=("Base policy", "Migr plain", "Migr hot-first", "Erase plain", "Erase hot-first"),
        rows=rows,
        notes=(
            "usually a no-op here, which is itself the III-C claim: cold "
            "blocks accumulate no invalid pages, so they never qualify as "
            "victims even without the explicit preference — the wrapper is "
            "a safety net for workloads that do invalidate shared content"
        ),
        data=data,
    )


def _write_buffer_spec(buffer_pages: int, scale: str) -> RunSpec:
    overrides = (
        freeze_overrides(write_buffer_pages=buffer_pages) if buffer_pages else ()
    )
    return RunSpec(
        workload="homes", scheme="cagc", scale=scale, config_overrides=overrides
    )


def write_buffer_specs(scale: str) -> List[RunSpec]:
    return [_write_buffer_spec(pages, scale) for pages in BUFFER_PAGES]


def run_write_buffer(scale: str = "bench") -> ExperimentReport:
    """A7: DRAM write buffer in front of CAGC (related work [32, 36]).

    Buffering and GC-time dedup attack the same quantity — flash write
    traffic — from different ends; this sweep shows how they compose.
    """
    rows = []
    data = {}
    for buffer_pages in BUFFER_PAGES:
        result = result_for(_write_buffer_spec(buffer_pages, scale))
        absorbed = (
            f"{result.buffer.absorption_ratio:.1%}" if result.buffer else "-"
        )
        rows.append(
            (
                buffer_pages,
                result.io.user_pages_programmed,
                result.blocks_erased,
                f"{result.latency.mean_us:.0f}us",
                absorbed,
            )
        )
        data[buffer_pages] = {
            "pages_programmed": result.io.user_pages_programmed,
            "blocks_erased": result.blocks_erased,
            "mean_us": result.latency.mean_us,
            "absorption": result.buffer.absorption_ratio if result.buffer else 0.0,
        }
    return ExperimentReport(
        experiment_id="ablation-write-buffer",
        title="DRAM write-buffer sweep in front of CAGC (homes)",
        headers=("Buffer pages", "Pages programmed", "Erases", "Mean resp", "Absorbed"),
        rows=rows,
        notes="buffering absorbs overwrites before flash; composes with GC dedup",
        data=data,
    )


def separation_specs(scale: str) -> List[RunSpec]:
    return [
        RunSpec(workload=workload, scheme=scheme, scale=scale)
        for workload in ("homes", "mail")
        for scheme in ("baseline", "lba-hotcold", "cagc")
    ]


def run_separation(scale: str = "bench") -> ExperimentReport:
    """A6: spatial (LBA) vs content (refcount) hot/cold separation.

    The paper's related-work argument: prior GC work separates hot/cold
    by logical address; CAGC separates by content reference count.  This
    ablation pits the two signals against each other (both relative to
    the plain Baseline).
    """
    rows = []
    data = {}
    for workload in ("homes", "mail"):
        base = result_for(RunSpec(workload=workload, scheme="baseline", scale=scale))
        lba = result_for(RunSpec(workload=workload, scheme="lba-hotcold", scale=scale))
        cagc = result_for(RunSpec(workload=workload, scheme="cagc", scale=scale))
        r_lba = reduction_vs_baseline(base.pages_migrated, lba.pages_migrated)
        r_cagc = reduction_vs_baseline(base.pages_migrated, cagc.pages_migrated)
        e_lba = reduction_vs_baseline(base.blocks_erased, lba.blocks_erased)
        e_cagc = reduction_vs_baseline(base.blocks_erased, cagc.blocks_erased)
        rows.append(
            (workload, f"{r_lba:.1f}%", f"{r_cagc:.1f}%", f"{e_lba:.1f}%", f"{e_cagc:.1f}%")
        )
        data[workload] = {
            "lba_migration_cut_pct": r_lba,
            "cagc_migration_cut_pct": r_cagc,
            "lba_erase_cut_pct": e_lba,
            "cagc_erase_cut_pct": e_cagc,
        }
    return ExperimentReport(
        experiment_id="ablation-separation",
        title="Hot/cold separation signal: LBA write-frequency vs refcount+dedup",
        headers=("Workload", "Migr LBA", "Migr CAGC", "Erase LBA", "Erase CAGC"),
        rows=rows,
        notes=(
            "LBA separation helps without dedup; CAGC's content signal "
            "scales with the workload's redundancy (paper section V)"
        ),
        data=data,
    )


def _gc_mode_spec(workload: str, mode: str, scale: str) -> RunSpec:
    overrides = freeze_overrides(gc_mode=mode) if mode != "blocking" else ()
    return RunSpec(
        workload=workload, scheme="cagc", scale=scale, config_overrides=overrides
    )


def gc_mode_specs(scale: str) -> List[RunSpec]:
    return [
        _gc_mode_spec(workload, mode, scale)
        for workload in ("homes", "mail")
        for mode in ("blocking", "preemptive")
    ]


def run_gc_mode(scale: str = "bench") -> ExperimentReport:
    """A5: blocking vs semi-preemptive GC (related work, Lee ISPASS'11).

    Preemption changes *when* GC runs, not how much: erases stay equal
    while the foreground tail shrinks because requests wait at most one
    block-collection instead of a whole burst.
    """
    rows = []
    data = {}
    for workload in ("homes", "mail"):
        blocking = result_for(_gc_mode_spec(workload, "blocking", scale))
        preemptive = result_for(_gc_mode_spec(workload, "preemptive", scale))
        p99_cut = reduction_vs_baseline(
            blocking.latency.p99_us, preemptive.latency.p99_us
        )
        rows.append(
            (
                workload,
                f"{blocking.latency.p99_us:.0f}us",
                f"{preemptive.latency.p99_us:.0f}us",
                f"{p99_cut:.1f}%",
                blocking.blocks_erased,
                preemptive.blocks_erased,
            )
        )
        data[workload] = {
            "blocking_p99_us": blocking.latency.p99_us,
            "preemptive_p99_us": preemptive.latency.p99_us,
            "p99_cut_pct": p99_cut,
            "blocking_erases": blocking.blocks_erased,
            "preemptive_erases": preemptive.blocks_erased,
        }
    return ExperimentReport(
        experiment_id="ablation-gc-mode",
        title="CAGC under blocking vs semi-preemptive GC",
        headers=(
            "Workload",
            "p99 blocking",
            "p99 preemptive",
            "p99 cut",
            "Erases blk",
            "Erases pre",
        ),
        rows=rows,
        notes="preemption moves GC into idle gaps; reclamation volume is unchanged",
        data=data,
    )


def _op_space_spec(scheme: str, op_ratio: float, scale: str) -> RunSpec:
    overrides = freeze_overrides(op_ratio=op_ratio) if op_ratio != 0.07 else ()
    return RunSpec(
        workload=ABLATION_WORKLOAD, scheme=scheme, scale=scale,
        config_overrides=overrides,
    )


def op_space_specs(scale: str) -> List[RunSpec]:
    return [
        _op_space_spec(scheme, op_ratio, scale)
        for op_ratio in OP_RATIOS
        for scheme in ("baseline", "cagc")
    ]


def run_op_space(scale: str = "bench") -> ExperimentReport:
    """A4: over-provisioning sensitivity of CAGC's erase reduction."""
    rows = []
    data = {}
    for op_ratio in OP_RATIOS:
        base = result_for(_op_space_spec("baseline", op_ratio, scale))
        cagc = result_for(_op_space_spec("cagc", op_ratio, scale))
        r_erased = reduction_vs_baseline(base.blocks_erased, cagc.blocks_erased)
        rows.append(
            (f"{op_ratio:.0%}", base.blocks_erased, cagc.blocks_erased, f"{r_erased:.1f}%")
        )
        data[op_ratio] = {
            "baseline": base.blocks_erased,
            "cagc": cagc.blocks_erased,
            "erase_reduction_pct": r_erased,
        }
    return ExperimentReport(
        experiment_id="ablation-op-space",
        title=f"Erase reduction vs over-provisioning ({ABLATION_WORKLOAD})",
        headers=("OP space", "Baseline erases", "CAGC erases", "Reduction"),
        rows=rows,
        notes="more OP relaxes GC pressure for both schemes; the CAGC win persists",
        data=data,
    )
