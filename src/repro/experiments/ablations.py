"""Ablations beyond the paper — the design knobs DESIGN.md calls out.

* **A1 threshold** — sweep the cold-region reference-count threshold.
* **A2 placement** — CAGC with hot/cold placement disabled (dedup-only)
  versus full CAGC: how much of the win is placement vs GC-time dedup?
* **A3 hash latency** — sweep the hash engine's latency and find where
  inline dedup stops hurting a ULL device (the paper's motivation says
  never, for realistic SHA latencies).
* **A4 OP space** — over-provisioning sensitivity of the CAGC win.
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import TimingConfig
from repro.core.cagc import CAGCScheme
from repro.core.placement import PlacementPolicy
from repro.device.ssd import run_trace
from repro.experiments.common import (
    ExperimentReport,
    get_scale,
    reduction_vs_baseline,
)
from repro.schemes import make_scheme

#: Ablations run on the workload where each knob matters most.
ABLATION_WORKLOAD = "mail"


def run_threshold(scale: str = "bench") -> ExperimentReport:
    """A1: cold threshold sweep (refcount >= t goes cold)."""
    sc = get_scale(scale)
    config = sc.config()
    trace = sc.trace(ABLATION_WORKLOAD, config)
    base = run_trace(make_scheme("baseline", config), trace)
    rows = []
    data = {}
    for threshold in (2, 3, 4, 8):
        cfg_t = replace(config, cold_threshold=threshold)
        result = run_trace(make_scheme("cagc", cfg_t), trace)
        r_erased = reduction_vs_baseline(base.blocks_erased, result.blocks_erased)
        r_migr = reduction_vs_baseline(base.pages_migrated, result.pages_migrated)
        rows.append((threshold, result.blocks_erased, f"{r_erased:.1f}%", f"{r_migr:.1f}%"))
        data[threshold] = {
            "blocks_erased": result.blocks_erased,
            "erase_reduction_pct": r_erased,
            "migration_reduction_pct": r_migr,
        }
    return ExperimentReport(
        experiment_id="ablation-threshold",
        title=f"Cold-region refcount threshold sweep ({ABLATION_WORKLOAD})",
        headers=("Threshold", "Blocks erased", "Erase cut", "Migration cut"),
        rows=rows,
        notes="paper uses 'e.g., 1' (our threshold=2: any shared page is cold)",
        data=data,
    )


class _NoColdPlacement(PlacementPolicy):
    """Placement ablation: everything stays in the hot region."""

    def is_cold(self, refcount: int) -> bool:  # noqa: D102 - ablation stub
        return False


def run_placement(scale: str = "bench") -> ExperimentReport:
    """A2: full CAGC vs dedup-only CAGC (no hot/cold separation)."""
    sc = get_scale(scale)
    config = sc.config()
    rows = []
    data = {}
    for workload in ("homes", "mail"):
        trace = sc.trace(workload, config)
        base = run_trace(make_scheme("baseline", config), trace)
        full = run_trace(CAGCScheme(config), trace)
        dedup_only = run_trace(
            CAGCScheme(config, placement=_NoColdPlacement(config)), trace
        )
        r_full = reduction_vs_baseline(base.pages_migrated, full.pages_migrated)
        r_dedup = reduction_vs_baseline(base.pages_migrated, dedup_only.pages_migrated)
        e_full = reduction_vs_baseline(base.blocks_erased, full.blocks_erased)
        e_dedup = reduction_vs_baseline(base.blocks_erased, dedup_only.blocks_erased)
        rows.append(
            (workload, f"{r_dedup:.1f}%", f"{r_full:.1f}%", f"{e_dedup:.1f}%", f"{e_full:.1f}%")
        )
        data[workload] = {
            "dedup_only_migration_cut_pct": r_dedup,
            "full_migration_cut_pct": r_full,
            "dedup_only_erase_cut_pct": e_dedup,
            "full_erase_cut_pct": e_full,
        }
    return ExperimentReport(
        experiment_id="ablation-placement",
        title="Dedup-only CAGC vs full CAGC (with refcount placement)",
        headers=("Workload", "Migr cut (dedup)", "Migr (full)", "Erase (dedup)", "Erase (full)"),
        rows=rows,
        notes=(
            "in this trace model the placement delta is small — GC-time "
            "dedup itself provides nearly all of CAGC's win, because the "
            "deduplicated cold set is compact; see EXPERIMENTS.md"
        ),
        data=data,
    )


def run_hash_latency(scale: str = "bench") -> ExperimentReport:
    """A3: where does inline dedup stop hurting? (GC-quiet regime)"""
    sc = get_scale(scale)
    rows = []
    data = {}
    for hash_us in (0.0, 2.0, 7.0, 14.0, 28.0):
        timing = TimingConfig(hash_us=hash_us)
        config = sc.config(timing=timing)
        trace = sc.trace("homes", config, fill_factor=0.5, lpn_utilization=0.5)
        base = run_trace(make_scheme("baseline", config), trace)
        inline = run_trace(make_scheme("inline-dedupe", config), trace)
        normalized = (
            inline.latency.mean_us / base.latency.mean_us
            if base.latency.mean_us
            else 0.0
        )
        rows.append((f"{hash_us:g}us", f"{normalized:.3f}"))
        data[hash_us] = normalized
    return ExperimentReport(
        experiment_id="ablation-hash-latency",
        title="Inline-Dedupe normalized response vs hash latency (homes, GC-quiet)",
        headers=("Hash latency", "Inline/Baseline"),
        rows=rows,
        notes=(
            "at 0 us the schemes tie (a hash coprocessor would close the "
            "gap); at SHA-class latencies inline dedup hurts a ULL device"
        ),
        data=data,
    )


def run_channels(scale: str = "bench") -> ExperimentReport:
    """A9: channel-level parallelism (related work: parallel GC, SC'16).

    Replays homes on the channel-parallel controller with 1/2/4/8
    channels: queueing delay falls with channel count and GC bursts
    stall only their own channel.
    """
    from repro.device.parallel import ParallelSSD

    sc = get_scale(scale)
    rows = []
    data = {}
    for channels in (1, 2, 4, 8):
        config = sc.config()
        config = replace(
            config, geometry=replace(config.geometry, channels=channels)
        )
        config.validate()
        trace = sc.trace("homes", config)
        scheme = make_scheme("cagc", config)
        result = ParallelSSD(scheme).replay(trace)
        rows.append(
            (
                channels,
                f"{result.latency.mean_us:.0f}us",
                f"{result.latency.p99_us:.0f}us",
                result.blocks_erased,
            )
        )
        data[channels] = {
            "mean_us": result.latency.mean_us,
            "p99_us": result.latency.p99_us,
            "blocks_erased": result.blocks_erased,
        }
    return ExperimentReport(
        experiment_id="ablation-channels",
        title="Channel-parallel controller: channel-count sweep (homes, CAGC)",
        headers=("Channels", "Mean resp", "p99", "Erases"),
        rows=rows,
        notes="GC stalls one channel; the rest keep serving (parallel-GC effect)",
        data=data,
    )


def run_hot_victims(scale: str = "bench") -> ExperimentReport:
    """A8: hot-first victim preference (section III-C's 'desirable
    candidates') on top of each base victim policy."""
    from repro.ftl.gc import make_policy

    sc = get_scale(scale)
    config = sc.config()
    trace = sc.trace("mail", config)
    rows = []
    data = {}
    for policy_name in ("greedy", "cost-benefit"):
        plain = run_trace(
            CAGCScheme(config, policy=make_policy(policy_name)), trace
        )
        hot_first = run_trace(
            CAGCScheme(
                config, policy=make_policy(policy_name), prefer_hot_victims=True
            ),
            trace,
        )
        rows.append(
            (
                policy_name,
                plain.pages_migrated,
                hot_first.pages_migrated,
                plain.blocks_erased,
                hot_first.blocks_erased,
            )
        )
        data[policy_name] = {
            "plain_migrated": plain.pages_migrated,
            "hot_first_migrated": hot_first.pages_migrated,
            "plain_erased": plain.blocks_erased,
            "hot_first_erased": hot_first.blocks_erased,
        }
    return ExperimentReport(
        experiment_id="ablation-hot-victims",
        title="CAGC with hot-first victim preference (mail)",
        headers=("Base policy", "Migr plain", "Migr hot-first", "Erase plain", "Erase hot-first"),
        rows=rows,
        notes=(
            "usually a no-op here, which is itself the III-C claim: cold "
            "blocks accumulate no invalid pages, so they never qualify as "
            "victims even without the explicit preference — the wrapper is "
            "a safety net for workloads that do invalidate shared content"
        ),
        data=data,
    )


def run_write_buffer(scale: str = "bench") -> ExperimentReport:
    """A7: DRAM write buffer in front of CAGC (related work [32, 36]).

    Buffering and GC-time dedup attack the same quantity — flash write
    traffic — from different ends; this sweep shows how they compose.
    """
    sc = get_scale(scale)
    rows = []
    data = {}
    base_config = sc.config()
    trace = sc.trace("homes", base_config)
    for buffer_pages in (0, 256, 1024, 4096):
        config = replace(base_config, write_buffer_pages=buffer_pages)
        result = run_trace(make_scheme("cagc", config), trace)
        absorbed = (
            f"{result.buffer.absorption_ratio:.1%}" if result.buffer else "-"
        )
        rows.append(
            (
                buffer_pages,
                result.io.user_pages_programmed,
                result.blocks_erased,
                f"{result.latency.mean_us:.0f}us",
                absorbed,
            )
        )
        data[buffer_pages] = {
            "pages_programmed": result.io.user_pages_programmed,
            "blocks_erased": result.blocks_erased,
            "mean_us": result.latency.mean_us,
            "absorption": result.buffer.absorption_ratio if result.buffer else 0.0,
        }
    return ExperimentReport(
        experiment_id="ablation-write-buffer",
        title="DRAM write-buffer sweep in front of CAGC (homes)",
        headers=("Buffer pages", "Pages programmed", "Erases", "Mean resp", "Absorbed"),
        rows=rows,
        notes="buffering absorbs overwrites before flash; composes with GC dedup",
        data=data,
    )


def run_separation(scale: str = "bench") -> ExperimentReport:
    """A6: spatial (LBA) vs content (refcount) hot/cold separation.

    The paper's related-work argument: prior GC work separates hot/cold
    by logical address; CAGC separates by content reference count.  This
    ablation pits the two signals against each other (both relative to
    the plain Baseline).
    """
    sc = get_scale(scale)
    config = sc.config()
    rows = []
    data = {}
    for workload in ("homes", "mail"):
        trace = sc.trace(workload, config)
        base = run_trace(make_scheme("baseline", config), trace)
        lba = run_trace(make_scheme("lba-hotcold", config), trace)
        cagc = run_trace(make_scheme("cagc", config), trace)
        r_lba = reduction_vs_baseline(base.pages_migrated, lba.pages_migrated)
        r_cagc = reduction_vs_baseline(base.pages_migrated, cagc.pages_migrated)
        e_lba = reduction_vs_baseline(base.blocks_erased, lba.blocks_erased)
        e_cagc = reduction_vs_baseline(base.blocks_erased, cagc.blocks_erased)
        rows.append(
            (workload, f"{r_lba:.1f}%", f"{r_cagc:.1f}%", f"{e_lba:.1f}%", f"{e_cagc:.1f}%")
        )
        data[workload] = {
            "lba_migration_cut_pct": r_lba,
            "cagc_migration_cut_pct": r_cagc,
            "lba_erase_cut_pct": e_lba,
            "cagc_erase_cut_pct": e_cagc,
        }
    return ExperimentReport(
        experiment_id="ablation-separation",
        title="Hot/cold separation signal: LBA write-frequency vs refcount+dedup",
        headers=("Workload", "Migr LBA", "Migr CAGC", "Erase LBA", "Erase CAGC"),
        rows=rows,
        notes=(
            "LBA separation helps without dedup; CAGC's content signal "
            "scales with the workload's redundancy (paper section V)"
        ),
        data=data,
    )


def run_gc_mode(scale: str = "bench") -> ExperimentReport:
    """A5: blocking vs semi-preemptive GC (related work, Lee ISPASS'11).

    Preemption changes *when* GC runs, not how much: erases stay equal
    while the foreground tail shrinks because requests wait at most one
    block-collection instead of a whole burst.
    """
    sc = get_scale(scale)
    rows = []
    data = {}
    for workload in ("homes", "mail"):
        per_mode = {}
        for mode in ("blocking", "preemptive"):
            config = sc.config(gc_mode=mode)
            trace = sc.trace(workload, config)
            result = run_trace(make_scheme("cagc", config), trace)
            per_mode[mode] = result
        blocking = per_mode["blocking"]
        preemptive = per_mode["preemptive"]
        p99_cut = reduction_vs_baseline(
            blocking.latency.p99_us, preemptive.latency.p99_us
        )
        rows.append(
            (
                workload,
                f"{blocking.latency.p99_us:.0f}us",
                f"{preemptive.latency.p99_us:.0f}us",
                f"{p99_cut:.1f}%",
                blocking.blocks_erased,
                preemptive.blocks_erased,
            )
        )
        data[workload] = {
            "blocking_p99_us": blocking.latency.p99_us,
            "preemptive_p99_us": preemptive.latency.p99_us,
            "p99_cut_pct": p99_cut,
            "blocking_erases": blocking.blocks_erased,
            "preemptive_erases": preemptive.blocks_erased,
        }
    return ExperimentReport(
        experiment_id="ablation-gc-mode",
        title="CAGC under blocking vs semi-preemptive GC",
        headers=(
            "Workload",
            "p99 blocking",
            "p99 preemptive",
            "p99 cut",
            "Erases blk",
            "Erases pre",
        ),
        rows=rows,
        notes="preemption moves GC into idle gaps; reclamation volume is unchanged",
        data=data,
    )


def run_op_space(scale: str = "bench") -> ExperimentReport:
    """A4: over-provisioning sensitivity of CAGC's erase reduction."""
    sc = get_scale(scale)
    rows = []
    data = {}
    for op_ratio in (0.07, 0.15, 0.25):
        config = sc.config(op_ratio=op_ratio)
        trace = sc.trace(ABLATION_WORKLOAD, config)
        base = run_trace(make_scheme("baseline", config), trace)
        cagc = run_trace(make_scheme("cagc", config), trace)
        r_erased = reduction_vs_baseline(base.blocks_erased, cagc.blocks_erased)
        rows.append(
            (f"{op_ratio:.0%}", base.blocks_erased, cagc.blocks_erased, f"{r_erased:.1f}%")
        )
        data[op_ratio] = {
            "baseline": base.blocks_erased,
            "cagc": cagc.blocks_erased,
            "erase_reduction_pct": r_erased,
        }
    return ExperimentReport(
        experiment_id="ablation-op-space",
        title=f"Erase reduction vs over-provisioning ({ABLATION_WORKLOAD})",
        headers=("OP space", "Baseline erases", "CAGC erases", "Reduction"),
        rows=rows,
        notes="more OP relaxes GC pressure for both schemes; the CAGC win persists",
        data=data,
    )
