"""Fig 9 — flash blocks erased: Baseline vs CAGC.

The paper reports CAGC erasing 23.3 % / 48.3 % / 86.6 % fewer blocks
than Baseline under Homes / Web-vm / Mail (greedy victim selection).

Our honest page-conservation accounting bounds the erase reduction by
the *migration share* of total programs (every user page still programs
once under CAGC), so the measured reductions are compressed relative to
the paper while preserving the ordering Homes < Web-vm < Mail; see
EXPERIMENTS.md for the full analysis.
"""

from __future__ import annotations

from repro.experiments.common import (
    WORKLOADS,
    ExperimentReport,
    gc_efficiency_result,
    reduction_vs_baseline,
)

PAPER_REDUCTION_PCT = {"homes": 23.3, "web-vm": 48.3, "mail": 86.6}


def run(scale: str = "bench") -> ExperimentReport:
    rows = []
    data = {}
    for workload in WORKLOADS:
        base = gc_efficiency_result(workload, "baseline", scale)
        cagc = gc_efficiency_result(workload, "cagc", scale)
        reduction = reduction_vs_baseline(base.blocks_erased, cagc.blocks_erased)
        rows.append(
            (
                workload,
                base.blocks_erased,
                cagc.blocks_erased,
                f"{reduction:.1f}%",
                f"{PAPER_REDUCTION_PCT[workload]:.1f}%",
            )
        )
        data[workload] = {
            "baseline": base.blocks_erased,
            "cagc": cagc.blocks_erased,
            "reduction_pct": reduction,
            "paper_reduction_pct": PAPER_REDUCTION_PCT[workload],
        }
    return ExperimentReport(
        experiment_id="fig9",
        title="Flash blocks erased during GC (Baseline vs CAGC, greedy policy)",
        headers=("Workload", "Baseline", "CAGC", "Reduction", "Paper"),
        rows=rows,
        paper_claim="CAGC erases 23.3%/48.3%/86.6% fewer blocks (Homes/Web-vm/Mail)",
        notes=(
            "reduction ordering (Homes < Web-vm < Mail, increasing with "
            "dedup ratio) reproduces; magnitudes are compressed by strict "
            "page-conservation accounting (see EXPERIMENTS.md)"
        ),
        data=data,
    )
