"""Configuration objects for the simulated ultra-low latency SSD.

The defaults reproduce Table I of the CAGC paper:

======================  =========
Page size               4 KB
Block size              256 KB (64 pages)
Over-provisioning       7 %
Capacity                80 GB (scaled down by default for tractable runs)
Read latency            12 us
Write latency           16 us
Erase latency           1.5 ms
Hash latency            14 us
GC watermark            20 %
======================  =========

All latencies are stored in **microseconds** as floats; the simulator
clock is a float microsecond counter throughout the code base.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Optional

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: Microseconds per millisecond, used for readability in timing math.
MS = 1000.0


@dataclass(frozen=True)
class TimingConfig:
    """Latency parameters of the flash device and the hash engine.

    All values are microseconds for a single 4 KB page operation (or a
    single block for :attr:`erase_us`).  Defaults follow Table I of the
    paper (Samsung Z-NAND class device).
    """

    read_us: float = 12.0
    write_us: float = 16.0
    erase_us: float = 1.5 * MS
    hash_us: float = 14.0
    #: Parallel hash-engine lanes.  1 models firmware SHA (the paper's
    #: setting); >1 models the on-chip hash coprocessors of CA-SSD /
    #: Kim et al. that the related work discusses.
    hash_lanes: int = 1
    #: Fingerprint-index lookup cost (paper: "microsecond-level
    #: calculation and search overhead"); charged once per looked-up page.
    lookup_us: float = 1.0
    #: Per-request firmware + host-interface overhead added to every user
    #: I/O.  Not in Table I; calibrated so a 4 KB access completes in the
    #: low tens of microseconds — between Z-NAND's 3 us flash read and
    #: the ~50 us the paper quotes for a conventional NVMe SSD (§II-A).
    overhead_us: float = 20.0

    def validate(self) -> None:
        for name in ("read_us", "write_us", "erase_us", "hash_us", "lookup_us"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")
        if self.overhead_us < 0:
            raise ValueError("overhead_us must be non-negative")
        if self.hash_lanes < 1:
            raise ValueError("hash_lanes must be >= 1")


@dataclass(frozen=True)
class GeometryConfig:
    """Physical layout of the simulated flash array.

    The paper's device is 80 GB with 4 KB pages and 256 KB blocks.  The
    default here is a scaled-down device so tests and benchmarks replay
    enough traffic to force thousands of GC cycles in seconds; the paper
    geometry is available via :func:`paper_geometry`.
    """

    channels: int = 4
    page_size: int = 4 * KB
    pages_per_block: int = 64
    blocks: int = 2048  # total physical blocks across all channels

    @property
    def block_size(self) -> int:
        return self.page_size * self.pages_per_block

    @property
    def total_pages(self) -> int:
        return self.blocks * self.pages_per_block

    @property
    def physical_bytes(self) -> int:
        return self.total_pages * self.page_size

    def validate(self) -> None:
        if self.channels <= 0:
            raise ValueError("channels must be positive")
        if self.page_size <= 0:
            raise ValueError("page_size must be positive")
        if self.pages_per_block <= 0:
            raise ValueError("pages_per_block must be positive")
        if self.blocks <= 0:
            raise ValueError("blocks must be positive")
        if self.blocks % self.channels != 0:
            raise ValueError(
                "blocks must divide evenly across channels "
                f"(blocks={self.blocks}, channels={self.channels})"
            )


@dataclass(frozen=True)
class SSDConfig:
    """Complete configuration of one simulated SSD.

    ``op_ratio`` is the over-provisioning fraction: the logical capacity
    exported to the host is ``physical * (1 - op_ratio)``.  ``gc_watermark``
    is the free-block fraction below which garbage collection triggers
    (Table I: 20 %), and ``gc_stop_watermark`` is the fraction at which a
    GC burst stops reclaiming.
    """

    geometry: GeometryConfig = field(default_factory=GeometryConfig)
    timing: TimingConfig = field(default_factory=TimingConfig)
    op_ratio: float = 0.07
    gc_watermark: float = 0.20
    gc_stop_watermark: float = 0.22
    #: Maximum victim blocks reclaimed per GC burst.  Bounds the
    #: foreground pause one burst can inflict (real FTLs do incremental
    #: GC for the same reason); the next write below the watermark
    #: triggers another burst.
    gc_burst_blocks: int = 4
    #: Foreground GC mode.  ``blocking``: a triggering write stalls for a
    #: whole burst (classic FlashSim).  ``preemptive``: the write stalls
    #: only until a small free-block reserve is restored and the rest of
    #: the reclamation happens in device idle time, one block per chunk,
    #: so queued requests wait at most one block-collection — the
    #: semi-preemptive GC of Lee et al. (ISPASS'11) the paper cites.
    gc_mode: str = "blocking"
    #: Reference-count threshold for cold-region placement (section III-C;
    #: a page whose refcount reaches this value migrates to the cold
    #: region).  The paper's example threshold is "e.g., 1", meaning
    #: refcount > 1 is cold; we store the smallest *cold* refcount.
    cold_threshold: int = 2
    #: Fraction of physical blocks reserved for the cold region under
    #: CAGC's two-region layout.
    cold_region_ratio: float = 0.25
    #: Draw fresh active blocks least-worn-first (dynamic wear leveling)
    #: instead of FIFO.
    wear_aware_allocation: bool = False
    #: DRAM write-back buffer in front of the FTL (0 = disabled).  The
    #: related-work mitigation family: absorb overwrites before flash.
    write_buffer_pages: int = 0
    #: DRAM access latency charged per buffered page.
    write_buffer_dram_us: float = 1.0
    #: Replay kernel implementation.  ``reference`` is the per-request
    #: Python event loop; ``vectorized`` batches whole request runs
    #: through ``repro.kernel`` and must produce bit-identical
    #: trajectories (it falls back to the reference path for features
    #: the batched kernels do not model: preemptive GC, write buffers,
    #: per-request telemetry).  The ``REPRO_KERNEL`` environment
    #: variable overrides the default for configs that do not set it
    #: explicitly — CI uses it to run the whole tier-1 suite on the
    #: vectorized path.
    kernel: str = field(
        default_factory=lambda: os.environ.get("REPRO_KERNEL", "reference")
    )
    #: Request-chunk size of the vectorized replay orchestrator: how
    #: many trace rows one batch slice covers.  Smaller chunks bound
    #: the working set of the column slices (useful for constant-memory
    #: streamed replays); larger chunks amortize the per-chunk numpy
    #: setup.  Has no effect on results — chunk edges only change where
    #: runs are *allowed* to split, never where they must.  The
    #: ``REPRO_KERNEL_CHUNK`` environment variable overrides the
    #: default for configs that do not set it explicitly.
    kernel_chunk_requests: int = field(
        default_factory=lambda: int(os.environ.get("REPRO_KERNEL_CHUNK", "65536"))
    )

    @property
    def logical_pages(self) -> int:
        """Number of LPNs exported to the host after over-provisioning."""
        return int(self.geometry.total_pages * (1.0 - self.op_ratio))

    @property
    def logical_bytes(self) -> int:
        return self.logical_pages * self.geometry.page_size

    def validate(self) -> None:
        self.geometry.validate()
        self.timing.validate()
        if not 0.0 <= self.op_ratio < 1.0:
            raise ValueError("op_ratio must be in [0, 1)")
        if not 0.0 < self.gc_watermark < 1.0:
            raise ValueError("gc_watermark must be in (0, 1)")
        if not self.gc_watermark <= self.gc_stop_watermark < 1.0:
            raise ValueError("gc_stop_watermark must be in [gc_watermark, 1)")
        if self.gc_burst_blocks < 1:
            raise ValueError("gc_burst_blocks must be >= 1")
        if self.gc_mode not in ("blocking", "preemptive"):
            raise ValueError("gc_mode must be 'blocking' or 'preemptive'")
        if self.kernel not in ("reference", "vectorized"):
            raise ValueError("kernel must be 'reference' or 'vectorized'")
        if self.kernel_chunk_requests < 1:
            raise ValueError("kernel_chunk_requests must be >= 1")
        if self.write_buffer_pages < 0:
            raise ValueError("write_buffer_pages must be >= 0")
        if self.write_buffer_dram_us < 0:
            raise ValueError("write_buffer_dram_us must be >= 0")
        if self.cold_threshold < 1:
            raise ValueError("cold_threshold must be >= 1")
        if not 0.0 <= self.cold_region_ratio < 1.0:
            raise ValueError("cold_region_ratio must be in [0, 1)")
        if self.logical_pages <= 0:
            raise ValueError("configuration leaves no logical capacity")

    def scaled(self, blocks: int, channels: Optional[int] = None) -> "SSDConfig":
        """Return a copy with a different physical block count.

        Scaling the device while keeping Table I latencies is how the
        experiment harness trades run time for statistical fidelity.
        """
        geometry = replace(
            self.geometry,
            blocks=blocks,
            channels=channels if channels is not None else self.geometry.channels,
        )
        cfg = replace(self, geometry=geometry)
        cfg.validate()
        return cfg


def paper_config() -> SSDConfig:
    """The exact Table I device: 80 GB, 4 KB pages, 256 KB blocks."""
    geometry = GeometryConfig(
        channels=8,
        page_size=4 * KB,
        pages_per_block=64,
        blocks=(80 * GB) // (256 * KB),
    )
    return SSDConfig(geometry=geometry)


def paper_geometry() -> GeometryConfig:
    """Geometry of the paper's 80 GB device (327,680 blocks)."""
    return paper_config().geometry


def small_config(
    blocks: int = 256,
    channels: int = 4,
    pages_per_block: int = 32,
    **overrides: object,
) -> SSDConfig:
    """A tiny device for unit tests: fast to fill, fast to GC."""
    geometry = GeometryConfig(
        channels=channels,
        page_size=4 * KB,
        pages_per_block=pages_per_block,
        blocks=blocks,
    )
    cfg = SSDConfig(geometry=geometry, **overrides)  # type: ignore[arg-type]
    cfg.validate()
    return cfg
