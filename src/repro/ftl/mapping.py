"""Page-level address mapping with shared physical pages.

A classic page-mapped FTL keeps LPN -> PPN.  Deduplication makes the
relation many-to-one: several LPNs may share one physical page.  The
table therefore also maintains the reverse map PPN -> {LPNs}; the size
of that set *is* the page's reference count (the quantity CAGC's
placement policy keys on).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set


class MappingError(RuntimeError):
    """Raised on inconsistent mapping operations (FTL bugs)."""


class MappingTable:
    """LPN->PPN map plus reverse map for shared pages."""

    def __init__(self) -> None:
        self._fwd: Dict[int, int] = {}
        self._rev: Dict[int, Set[int]] = {}

    def __len__(self) -> int:
        return len(self._fwd)

    # -- queries ---------------------------------------------------------------

    def lookup(self, lpn: int) -> Optional[int]:
        """PPN currently holding ``lpn``, or ``None`` if never written."""
        return self._fwd.get(lpn)

    def is_mapped(self, ppn: int) -> bool:
        return ppn in self._rev

    def refcount(self, ppn: int) -> int:
        """Number of LPNs sharing physical page ``ppn`` (0 if unmapped)."""
        refs = self._rev.get(ppn)
        return len(refs) if refs else 0

    def lpns_of(self, ppn: int) -> List[int]:
        """All LPNs mapped to ``ppn`` (copy; safe to mutate the table)."""
        return list(self._rev.get(ppn, ()))

    def mapped_ppns(self) -> Iterable[int]:
        return self._rev.keys()

    # -- mutations ---------------------------------------------------------------

    def bind(self, lpn: int, ppn: int) -> Optional[int]:
        """Map ``lpn`` to ``ppn``; return the previous PPN of ``lpn``.

        The caller decides what to do with the previous PPN (it becomes
        invalid only when its reference count drops to zero).
        """
        old = self._fwd.get(lpn)
        if old is not None:
            refs = self._rev[old]
            refs.discard(lpn)
            if not refs:
                del self._rev[old]
        self._fwd[lpn] = ppn
        self._rev.setdefault(ppn, set()).add(lpn)
        return old

    def unbind(self, lpn: int) -> Optional[int]:
        """Remove ``lpn``'s mapping (trim); return the PPN it held."""
        old = self._fwd.pop(lpn, None)
        if old is not None:
            refs = self._rev[old]
            refs.discard(lpn)
            if not refs:
                del self._rev[old]
        return old

    def remap_ppn(self, old_ppn: int, new_ppn: int) -> int:
        """Point every LPN of ``old_ppn`` at ``new_ppn`` (GC migration).

        Returns the number of LPNs moved.  ``new_ppn`` may already have
        its own referrers (dedup merge during CAGC migration).
        """
        refs = self._rev.pop(old_ppn, None)
        if refs is None:
            return 0
        if old_ppn == new_ppn:
            raise MappingError("remap_ppn to the same PPN")
        target = self._rev.setdefault(new_ppn, set())
        for lpn in refs:
            self._fwd[lpn] = new_ppn
            target.add(lpn)
        return len(refs)

    # -- invariants ----------------------------------------------------------------

    def check_invariants(self) -> None:
        """Forward and reverse maps must mirror each other (test hook)."""
        count = 0
        for ppn, refs in self._rev.items():
            if not refs:
                raise AssertionError(f"empty referrer set for ppn {ppn}")
            for lpn in refs:
                if self._fwd.get(lpn) != ppn:
                    raise AssertionError(f"rev says {lpn}->{ppn}, fwd disagrees")
            count += len(refs)
        if count != len(self._fwd):
            raise AssertionError("reverse map cardinality mismatch")
