"""Page-level address mapping with shared physical pages.

A classic page-mapped FTL keeps LPN -> PPN.  Deduplication makes the
relation many-to-one: several LPNs may share one physical page.  The
table therefore also maintains the reverse map PPN -> referrers; the
cardinality of that entry *is* the page's reference count (the quantity
CAGC's placement policy keys on).

Representation: per Fig 6, more than 80 % of pages only ever have a
single referrer, so storing a one-element ``set`` per page would spend
~200 bytes and a hash-table construction on the overwhelmingly common
case.  The reverse map therefore stores the referrer LPN as a bare
``int`` while the refcount is 1, promoting to a real ``set`` only when
a second LPN actually shares the page (and demoting back when sharing
ends).  Invariant: an ``int`` entry means refcount exactly 1; a ``set``
entry always holds >= 2 LPNs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Union

_Refs = Union[int, Set[int]]


class MappingError(RuntimeError):
    """Raised on inconsistent mapping operations (FTL bugs)."""


class MappingTable:
    """LPN->PPN map plus reverse map for shared pages."""

    __slots__ = ("_fwd", "_rev")

    def __init__(self) -> None:
        self._fwd: Dict[int, int] = {}
        #: PPN -> single LPN (refcount 1) or set of LPNs (refcount >= 2).
        self._rev: Dict[int, _Refs] = {}

    def __len__(self) -> int:
        return len(self._fwd)

    # -- queries ---------------------------------------------------------------

    def lookup(self, lpn: int) -> Optional[int]:
        """PPN currently holding ``lpn``, or ``None`` if never written."""
        return self._fwd.get(lpn)

    def mapped_count(self, lpn: int, npages: int) -> int:
        """How many LPNs of the extent ``[lpn, lpn + npages)`` are mapped.

        One bulk membership sweep (C-level ``map`` over the dict) — the
        read-request path's replacement for per-page :meth:`lookup`.
        """
        if npages <= 0:
            return 0
        return sum(map(self._fwd.__contains__, range(lpn, lpn + npages)))

    def is_mapped(self, ppn: int) -> bool:
        return ppn in self._rev

    def refcount(self, ppn: int) -> int:
        """Number of LPNs sharing physical page ``ppn`` (0 if unmapped)."""
        refs = self._rev.get(ppn)
        if refs is None:
            return 0
        return 1 if type(refs) is int else len(refs)

    def lpns_of(self, ppn: int) -> List[int]:
        """All LPNs mapped to ``ppn`` (copy; safe to mutate the table)."""
        refs = self._rev.get(ppn)
        if refs is None:
            return []
        return [refs] if type(refs) is int else list(refs)

    def mapped_ppns(self) -> Iterable[int]:
        return self._rev.keys()

    # -- mutations ---------------------------------------------------------------

    def _drop_ref(self, ppn: int, lpn: int) -> None:
        """Remove ``lpn`` from ``ppn``'s referrers (if present)."""
        rev = self._rev
        refs = rev[ppn]
        if type(refs) is int:
            if refs == lpn:
                del rev[ppn]
            return
        refs.discard(lpn)
        if len(refs) == 1:
            # Back to a single referrer: demote to the int fast path.
            rev[ppn] = next(iter(refs))

    def bind(self, lpn: int, ppn: int) -> Optional[int]:
        """Map ``lpn`` to ``ppn``; return the previous PPN of ``lpn``.

        The caller decides what to do with the previous PPN (it becomes
        invalid only when its reference count drops to zero).
        """
        fwd = self._fwd
        rev = self._rev
        old = fwd.get(lpn)
        if old is not None:
            self._drop_ref(old, lpn)
        fwd[lpn] = ppn
        refs = rev.get(ppn)
        if refs is None:
            rev[ppn] = lpn
        elif type(refs) is int:
            if refs != lpn:
                rev[ppn] = {refs, lpn}
        else:
            refs.add(lpn)
        return old

    def unbind(self, lpn: int) -> Optional[int]:
        """Remove ``lpn``'s mapping (trim); return the PPN it held."""
        old = self._fwd.pop(lpn, None)
        if old is not None:
            self._drop_ref(old, lpn)
        return old

    def remap_ppn(self, old_ppn: int, new_ppn: int) -> int:
        """Point every LPN of ``old_ppn`` at ``new_ppn`` (GC migration).

        Returns the number of LPNs moved.  ``new_ppn`` may already have
        its own referrers (dedup merge during CAGC migration).
        """
        rev = self._rev
        refs = rev.pop(old_ppn, None)
        if refs is None:
            return 0
        if old_ppn == new_ppn:
            raise MappingError("remap_ppn to the same PPN")
        fwd = self._fwd
        target = rev.get(new_ppn)
        if type(refs) is int:
            fwd[refs] = new_ppn
            if target is None:
                rev[new_ppn] = refs
            elif type(target) is int:
                rev[new_ppn] = {target, refs}
            else:
                target.add(refs)
            return 1
        moved = len(refs)
        for lpn in refs:
            fwd[lpn] = new_ppn
        if target is None:
            rev[new_ppn] = refs  # transfer the set wholesale
        elif type(target) is int:
            refs.add(target)
            rev[new_ppn] = refs
        else:
            target |= refs
        return moved

    # -- invariants ----------------------------------------------------------------

    def check_invariants(self) -> None:
        """Forward and reverse maps must mirror each other, and every
        reverse entry must use the right representation (test hook)."""
        count = 0
        for ppn, refs in self._rev.items():
            if type(refs) is int:
                lpns = (refs,)
            else:
                if len(refs) < 2:
                    raise AssertionError(
                        f"ppn {ppn}: set representation with {len(refs)} "
                        "referrers (refcount<2 must use the int fast path)"
                    )
                lpns = tuple(refs)
            for lpn in lpns:
                if self._fwd.get(lpn) != ppn:
                    raise AssertionError(f"rev says {lpn}->{ppn}, fwd disagrees")
            count += len(lpns)
        if count != len(self._fwd):
            raise AssertionError("reverse map cardinality mismatch")
