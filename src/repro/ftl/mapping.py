"""Page-level address mapping with shared physical pages.

A classic page-mapped FTL keeps LPN -> PPN.  Deduplication makes the
relation many-to-one: several LPNs may share one physical page.  The
table therefore also maintains the reverse relation PPN -> referrers;
the cardinality of that entry *is* the page's reference count (the
quantity CAGC's placement policy keys on).

Representation: the table is **columnar**.  Hot state lives in flat
C-typed arrays (``array('q')`` / ``array('i')``, 8/4 bytes per entry)
instead of Python dicts of boxed ints, so a production-scale geometry
costs ~20 bytes per page instead of the ~100+ bytes per dict slot, and
scalar access never touches a hash table:

* ``_fwd``  — LPN -> PPN forward map (``-1`` = unmapped);
* ``_ref``  — PPN -> reference count sidecar;
* ``_solo`` — PPN -> the sole referrer LPN while the refcount is
  exactly 1 (per Fig 6, >80 % of pages only ever have one referrer,
  so this column resolves the overwhelmingly common case);
* ``_shared`` — compact overflow dict PPN -> ``set`` of LPNs, populated
  only while a page is actually shared (refcount >= 2) and emptied the
  moment sharing ends.

Invariant: ``_ref[ppn] == 1`` means ``_solo[ppn]`` holds the referrer
and ``ppn`` is absent from ``_shared``; ``_ref[ppn] >= 2`` means
``_shared[ppn]`` holds all referrers (>= 2 of them) and ``_solo`` is
``-1``.  Arrays grow geometrically on demand, so a no-argument table
still works for unit tests; schemes pre-size them from the device
geometry.  Vectorized queries (``mapped_count`` over long extents,
``mapped_ppns``) run through transient NumPy views of the same buffers
— zero copies of the hot state.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Set

import numpy as np

_NO_PPN = -1  # forward-map sentinel: LPN never written / trimmed
_NO_LPN = -1  # solo-column sentinel: page unmapped or shared


class MappingError(RuntimeError):
    """Raised on inconsistent mapping operations (FTL bugs)."""


def _filled(typecode: str, fill: int, n: int) -> array:
    return array(typecode, [fill]) * n


class MappingTable:
    """Columnar LPN->PPN map plus refcount/referrer sidecars."""

    __slots__ = ("_fwd", "_ref", "_solo", "_shared", "_len")

    def __init__(self, logical_pages: int = 0, physical_pages: int = 0) -> None:
        self._fwd = _filled("q", _NO_PPN, max(logical_pages, 16))
        self._ref = _filled("i", 0, max(physical_pages, 16))
        self._solo = _filled("q", _NO_LPN, max(physical_pages, 16))
        #: PPN -> set of LPNs, only while refcount >= 2.
        self._shared: Dict[int, Set[int]] = {}
        self._len = 0

    def __len__(self) -> int:
        return self._len

    # -- growth ------------------------------------------------------------------

    def _grow_lpn(self, lpn: int) -> None:
        fwd = self._fwd
        need = max(lpn + 1, len(fwd) * 2)
        fwd.extend(_filled("q", _NO_PPN, need - len(fwd)))

    def _grow_ppn(self, ppn: int) -> None:
        ref = self._ref
        need = max(ppn + 1, len(ref) * 2)
        ref.extend(_filled("i", 0, need - len(ref)))
        self._solo.extend(_filled("q", _NO_LPN, need - len(self._solo)))

    # -- queries ---------------------------------------------------------------

    def lookup(self, lpn: int) -> Optional[int]:
        """PPN currently holding ``lpn``, or ``None`` if never written."""
        if lpn < 0 or lpn >= len(self._fwd):
            return None
        ppn = self._fwd[lpn]
        return None if ppn == _NO_PPN else ppn

    def mapped_count(self, lpn: int, npages: int) -> int:
        """How many LPNs of the extent ``[lpn, lpn + npages)`` are mapped.

        Short extents scan the column directly; long ones count through
        a vectorized NumPy view — the read-request path's replacement
        for per-page :meth:`lookup`.
        """
        if npages <= 0 or lpn >= len(self._fwd):
            return 0
        start = max(lpn, 0)
        stop = min(lpn + npages, len(self._fwd))
        if stop - start > 64:
            view = np.frombuffer(self._fwd, dtype=np.int64)
            return int(np.count_nonzero(view[start:stop] != _NO_PPN))
        fwd = self._fwd
        count = 0
        for i in range(start, stop):
            if fwd[i] != _NO_PPN:
                count += 1
        return count

    def is_mapped(self, ppn: int) -> bool:
        return 0 <= ppn < len(self._ref) and self._ref[ppn] > 0

    def refcount(self, ppn: int) -> int:
        """Number of LPNs sharing physical page ``ppn`` (0 if unmapped)."""
        if ppn < 0 or ppn >= len(self._ref):
            return 0
        return self._ref[ppn]

    def lpns_of(self, ppn: int) -> List[int]:
        """All LPNs mapped to ``ppn`` (copy; safe to mutate the table)."""
        if ppn < 0 or ppn >= len(self._ref):
            return []
        count = self._ref[ppn]
        if count == 0:
            return []
        if count == 1:
            return [self._solo[ppn]]
        return list(self._shared[ppn])

    def mapped_ppns(self) -> List[int]:
        """PPNs with at least one referrer (ascending)."""
        view = np.frombuffer(self._ref, dtype=np.int32)
        return np.nonzero(view)[0].tolist()

    # -- mutations ---------------------------------------------------------------

    def _drop_ref(self, ppn: int, lpn: int) -> None:
        """Remove ``lpn`` from ``ppn``'s referrers (if present)."""
        ref = self._ref
        count = ref[ppn]
        if count == 1:
            if self._solo[ppn] == lpn:
                ref[ppn] = 0
                self._solo[ppn] = _NO_LPN
            return
        if count == 0:
            return
        refs = self._shared[ppn]
        refs.discard(lpn)
        remaining = len(refs)
        if remaining == 1:
            # Back to a single referrer: demote to the solo column.
            self._solo[ppn] = next(iter(refs))
            del self._shared[ppn]
        ref[ppn] = remaining

    def _add_ref(self, ppn: int, lpn: int) -> None:
        """Add ``lpn`` to ``ppn``'s referrers (idempotent)."""
        ref = self._ref
        count = ref[ppn]
        if count == 0:
            ref[ppn] = 1
            self._solo[ppn] = lpn
        elif count == 1:
            solo = self._solo[ppn]
            if solo != lpn:
                self._shared[ppn] = {solo, lpn}
                self._solo[ppn] = _NO_LPN
                ref[ppn] = 2
        else:
            refs = self._shared[ppn]
            if lpn not in refs:
                refs.add(lpn)
                ref[ppn] = count + 1

    def bind(self, lpn: int, ppn: int) -> Optional[int]:
        """Map ``lpn`` to ``ppn``; return the previous PPN of ``lpn``.

        The caller decides what to do with the previous PPN (it becomes
        invalid only when its reference count drops to zero).
        """
        if lpn < 0 or ppn < 0:
            raise MappingError(f"negative lpn/ppn in bind({lpn}, {ppn})")
        fwd = self._fwd
        if lpn >= len(fwd):
            self._grow_lpn(lpn)
            fwd = self._fwd
        if ppn >= len(self._ref):
            self._grow_ppn(ppn)
        old = fwd[lpn]
        if old != _NO_PPN:
            self._drop_ref(old, lpn)
        else:
            self._len += 1
        fwd[lpn] = ppn
        self._add_ref(ppn, lpn)
        return None if old == _NO_PPN else old

    def unbind(self, lpn: int) -> Optional[int]:
        """Remove ``lpn``'s mapping (trim); return the PPN it held."""
        if lpn < 0 or lpn >= len(self._fwd):
            return None
        old = self._fwd[lpn]
        if old == _NO_PPN:
            return None
        self._fwd[lpn] = _NO_PPN
        self._len -= 1
        self._drop_ref(old, lpn)
        return old

    def remap_ppn(self, old_ppn: int, new_ppn: int) -> int:
        """Point every LPN of ``old_ppn`` at ``new_ppn`` (GC migration).

        Returns the number of LPNs moved.  ``new_ppn`` may already have
        its own referrers (dedup merge during CAGC migration).
        """
        count = self.refcount(old_ppn)
        if count == 0:
            return 0
        if old_ppn == new_ppn:
            raise MappingError("remap_ppn to the same PPN")
        if new_ppn < 0:
            raise MappingError(f"negative target ppn {new_ppn}")
        if new_ppn >= len(self._ref):
            self._grow_ppn(new_ppn)
        ref = self._ref
        solo = self._solo
        fwd = self._fwd
        # Detach the referrers from the source page.
        if count == 1:
            moving_lpn = solo[old_ppn]
            moving = None
            solo[old_ppn] = _NO_LPN
        else:
            moving_lpn = _NO_LPN
            moving = self._shared.pop(old_ppn)
        ref[old_ppn] = 0
        # Re-point the forward map.
        if moving is None:
            fwd[moving_lpn] = new_ppn
        else:
            for lpn in moving:
                fwd[lpn] = new_ppn
        # Merge into the target page's referrers.
        target_count = ref[new_ppn]
        if target_count == 0:
            if moving is None:
                ref[new_ppn] = 1
                solo[new_ppn] = moving_lpn
            else:
                self._shared[new_ppn] = moving  # transfer the set wholesale
                ref[new_ppn] = len(moving)
        elif target_count == 1:
            if moving is None:
                self._shared[new_ppn] = {solo[new_ppn], moving_lpn}
            else:
                moving.add(solo[new_ppn])
                self._shared[new_ppn] = moving
            solo[new_ppn] = _NO_LPN
            ref[new_ppn] = len(self._shared[new_ppn])
        else:
            target = self._shared[new_ppn]
            if moving is None:
                target.add(moving_lpn)
            else:
                target |= moving
            ref[new_ppn] = len(target)
        return count

    # -- invariants ----------------------------------------------------------------

    def check_invariants(self) -> None:
        """Forward and reverse columns must mirror each other, and every
        reverse entry must use the right representation (test hook)."""
        fwd = self._fwd
        ref = self._ref
        solo = self._solo
        count = 0
        for ppn in self.mapped_ppns():
            refcount = ref[ppn]
            if refcount == 1:
                if ppn in self._shared:
                    raise AssertionError(
                        f"ppn {ppn}: refcount 1 but present in the shared "
                        "overflow map (must use the solo column)"
                    )
                if solo[ppn] == _NO_LPN:
                    raise AssertionError(f"ppn {ppn}: refcount 1 with empty solo column")
                lpns = (solo[ppn],)
            else:
                refs = self._shared.get(ppn)
                if refs is None or len(refs) != refcount:
                    raise AssertionError(
                        f"ppn {ppn}: refcount {refcount} disagrees with shared "
                        f"overflow entry {refs!r}"
                    )
                if len(refs) < 2:
                    raise AssertionError(
                        f"ppn {ppn}: shared representation with {len(refs)} "
                        "referrers (refcount<2 must use the solo column)"
                    )
                if solo[ppn] != _NO_LPN:
                    raise AssertionError(f"ppn {ppn}: shared page with stale solo entry")
                lpns = tuple(refs)
            for lpn in lpns:
                if lpn < 0 or lpn >= len(fwd) or fwd[lpn] != ppn:
                    raise AssertionError(f"rev says {lpn}->{ppn}, fwd disagrees")
            count += len(lpns)
        for ppn in self._shared:
            if ref[ppn] < 2:
                raise AssertionError(f"shared overflow entry for unshared ppn {ppn}")
        if count != self._len:
            raise AssertionError("reverse column cardinality mismatch")
        view = np.frombuffer(fwd, dtype=np.int64)
        if int(np.count_nonzero(view != _NO_PPN)) != self._len:
            raise AssertionError("forward column cardinality mismatch")

    # -- introspection -------------------------------------------------------------

    def memory_bytes(self) -> int:
        """Actual DRAM footprint of the columnar state (arrays + overflow)."""
        import sys

        overflow = sys.getsizeof(self._shared) + sum(
            sys.getsizeof(s) + len(s) * 28 for s in self._shared.values()
        )
        return (
            len(self._fwd) * self._fwd.itemsize
            + len(self._ref) * self._ref.itemsize
            + len(self._solo) * self._solo.itemsize
            + overflow
        )
