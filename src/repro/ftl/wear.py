"""Wear-leveling statistics over per-block erase counts.

The paper argues CAGC improves *reliability* by erasing fewer blocks;
these helpers quantify that: total erases, mean/max erase count and the
coefficient of variation (lower = more even wear).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.flash.chip import FlashArray


@dataclass(frozen=True)
class WearStats:
    """Summary of block-erase wear across the device."""

    total_erases: int
    max_erase: int
    mean_erase: float
    std_erase: float

    @property
    def cov(self) -> float:
        """Coefficient of variation of erase counts (0 = perfectly even)."""
        return self.std_erase / self.mean_erase if self.mean_erase > 0 else 0.0


def wear_stats(flash: FlashArray) -> WearStats:
    counts = flash.erase_count
    return WearStats(
        total_erases=int(counts.sum()),
        max_erase=int(counts.max()) if counts.size else 0,
        mean_erase=float(counts.mean()) if counts.size else 0.0,
        std_erase=float(counts.std()) if counts.size else 0.0,
    )
