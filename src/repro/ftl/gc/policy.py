"""Victim-selection policy interface.

Policies expose two entry points with identical semantics:

* :meth:`VictimPolicy.select` — the reference path: a boolean
  eligibility mask plus a full-array scan.  O(blocks) per call, kept as
  the oracle the property tests compare against.
* :meth:`VictimPolicy.select_indexed` — the hot path: selection through
  an incrementally-maintained :class:`repro.ftl.gc.index.VictimIndex`,
  touching only actual candidates.  Every built-in policy overrides it
  with an implementation bit-identical to its masked scan (same victim,
  same tie-breaks, same RNG stream); the base-class default falls back
  to materializing the mask so custom policies keep working unchanged.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.flash.chip import FlashArray


class VictimPolicy(abc.ABC):
    """Chooses which eligible block GC erases next.

    ``select`` receives the flash array (for valid/invalid counters and
    ages), a boolean eligibility mask from the allocator, and the current
    simulation time; it returns a block index or ``None`` when no block
    is eligible.
    """

    name: str = "abstract"

    @abc.abstractmethod
    def select(
        self, flash: FlashArray, candidates: np.ndarray, now_us: float
    ) -> Optional[int]:
        """Pick a victim block, or ``None`` if ``candidates`` is empty."""

    def select_indexed(
        self,
        flash: FlashArray,
        index,
        now_us: float,
        region_arr: Optional[np.ndarray] = None,
        region: int = -1,
    ) -> Optional[int]:
        """Pick a victim through a :class:`VictimIndex`.

        ``region_arr``/``region`` optionally restrict the candidate set
        to blocks whose entry in ``region_arr`` equals ``region`` (the
        region-aware wrapper's hot-first filter).  The default
        implementation rebuilds the eligibility mask from the index and
        delegates to :meth:`select` — correct for any policy, O(blocks);
        the built-in policies override it with O(candidates) paths.
        """
        mask = index.candidates_mask()
        if region_arr is not None:
            mask &= region_arr == region
        return self.select(flash, mask, now_us)

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}()"
