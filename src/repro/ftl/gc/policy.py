"""Victim-selection policy interface."""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.flash.chip import FlashArray


class VictimPolicy(abc.ABC):
    """Chooses which eligible block GC erases next.

    ``select`` receives the flash array (for valid/invalid counters and
    ages), a boolean eligibility mask from the allocator, and the current
    simulation time; it returns a block index or ``None`` when no block
    is eligible.
    """

    name: str = "abstract"

    @abc.abstractmethod
    def select(
        self, flash: FlashArray, candidates: np.ndarray, now_us: float
    ) -> Optional[int]:
        """Pick a victim block, or ``None`` if ``candidates`` is empty."""

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}()"
