"""Random victim selection.

Picks uniformly among eligible blocks — the cheap wear-friendly policy
the paper cites as the first classical approach.  Seeded for
reproducible runs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.flash.chip import FlashArray
from repro.ftl.gc.policy import VictimPolicy


class RandomPolicy(VictimPolicy):
    """Uniform choice over eligible victim blocks."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    def select(
        self, flash: FlashArray, candidates: np.ndarray, now_us: float
    ) -> Optional[int]:
        indices = np.nonzero(candidates)[0]
        if indices.size == 0:
            return None
        return int(self._rng.choice(indices))

    def select_indexed(
        self,
        flash: FlashArray,
        index,
        now_us: float,
        region_arr: Optional[np.ndarray] = None,
        region: int = -1,
    ) -> Optional[int]:
        # Same ascending int64 candidate array as np.nonzero on the
        # oracle mask, so the seeded RNG stream draws identical victims.
        indices = index.sorted_candidates()
        if region_arr is not None and indices.size:
            indices = indices[region_arr[indices] == region]
        if indices.size == 0:
            return None
        return int(self._rng.choice(indices))
