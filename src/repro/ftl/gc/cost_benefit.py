"""Cost-benefit victim selection (Kawaguchi et al., USENIX '95).

Scores each candidate block by ``benefit/cost = age * (1 - u) / (2u)``
where ``u`` is the fraction of valid pages and ``age`` is the time since
the block's last write.  Balances reclaimed space against migration cost
and favours cold blocks, mitigating the uneven-wear problem the paper
attributes to pure greedy selection.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.flash.chip import FlashArray
from repro.ftl.gc.policy import VictimPolicy


class CostBenefitPolicy(VictimPolicy):
    """Select the block maximizing ``(1 - u) / (2u) * age``."""

    name = "cost-benefit"

    def select(
        self, flash: FlashArray, candidates: np.ndarray, now_us: float
    ) -> Optional[int]:
        indices = np.nonzero(candidates)[0]
        if indices.size == 0:
            return None
        score = self._scores(flash, indices, now_us)
        return int(indices[int(score.argmax())])

    @staticmethod
    def _scores(flash: FlashArray, indices: np.ndarray, now_us: float) -> np.ndarray:
        """Benefit/cost scores for candidate ``indices`` (elementwise,
        so any partition of the candidate set scores identically)."""
        ppb = flash.pages_per_block
        valid = flash.valid_count[indices].astype(np.float64)
        u = valid / ppb
        age = now_us - flash.last_write_us[indices]
        # u == 0 means a fully-invalid block: infinite benefit, zero cost.
        with np.errstate(divide="ignore"):
            return np.where(u > 0, (1.0 - u) / (2.0 * u) * np.maximum(age, 1.0), np.inf)

    def select_indexed(
        self,
        flash: FlashArray,
        index,
        now_us: float,
        region_arr: Optional[np.ndarray] = None,
        region: int = -1,
    ) -> Optional[int]:
        """Bucket-iterating scan with a score-bound early exit.

        Candidates are visited in descending invalid-count order.  All
        blocks in one bucket share ``u`` (full blocks: valid = ppb -
        invalid), and ``last_write_us >= 0`` bounds every age by
        ``now_us``, so ``(1-u)/(2u) * max(now_us, 1)`` caps everything a
        bucket — and, since ``(1-u)/(2u)`` grows with the invalid count,
        every *later* bucket — can still score.  Once the best seen
        strictly beats that cap, no remaining candidate can win and the
        scan stops.  Scores reuse the exact elementwise formula of the
        masked path, so the winner (ties: lowest block id, as argmax
        over ascending indices) is bit-identical.
        """
        ppb = flash.pages_per_block
        best_score = -np.inf
        best_block = -1
        age_cap = now_us if now_us > 1.0 else 1.0
        for inv, bucket in index.iter_buckets():
            if best_block >= 0 and inv < ppb:
                u_floor = (ppb - inv) / ppb
                if best_score > (1.0 - u_floor) / (2.0 * u_floor) * age_cap:
                    break
            if region_arr is None:
                blocks = bucket
            else:
                blocks = [b for b in bucket if region_arr[b] == region]
                if not blocks:
                    continue
            arr = np.asarray(blocks, dtype=np.int64)
            score = self._scores(flash, arr, now_us)
            top = float(score.max())
            if top > best_score:
                best_score = top
                best_block = int(arr[score == top].min())
            elif top == best_score and best_block >= 0:
                contender = int(arr[score == top].min())
                if contender < best_block:
                    best_block = contender
        return best_block if best_block >= 0 else None
