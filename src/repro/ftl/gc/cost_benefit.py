"""Cost-benefit victim selection (Kawaguchi et al., USENIX '95).

Scores each candidate block by ``benefit/cost = age * (1 - u) / (2u)``
where ``u`` is the fraction of valid pages and ``age`` is the time since
the block's last write.  Balances reclaimed space against migration cost
and favours cold blocks, mitigating the uneven-wear problem the paper
attributes to pure greedy selection.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.flash.chip import FlashArray
from repro.ftl.gc.policy import VictimPolicy


class CostBenefitPolicy(VictimPolicy):
    """Select the block maximizing ``(1 - u) / (2u) * age``."""

    name = "cost-benefit"

    def select(
        self, flash: FlashArray, candidates: np.ndarray, now_us: float
    ) -> Optional[int]:
        indices = np.nonzero(candidates)[0]
        if indices.size == 0:
            return None
        ppb = flash.pages_per_block
        valid = flash.valid_count[indices].astype(np.float64)
        u = valid / ppb
        age = now_us - flash.last_write_us[indices]
        # u == 0 means a fully-invalid block: infinite benefit, zero cost.
        with np.errstate(divide="ignore"):
            score = np.where(u > 0, (1.0 - u) / (2.0 * u) * np.maximum(age, 1.0), np.inf)
        return int(indices[int(score.argmax())])
