"""Incremental GC victim index: O(1) selection over any block count.

The seed implementation re-derived the victim candidate set on every
selection — an O(blocks) boolean-mask allocation plus a full-array scan
per collected block, inside the GC burst loop.  At the scaled
geometries the roadmap targets (10-100x the default block count) that
scan dominates replay time (Dayan & Bonnet; Nagel et al. both identify
victim-selection data structures as the scaling lever for this loop).

:class:`VictimIndex` instead maintains the candidate set *as it
changes*: one bucket per invalid-page count, each bucket an intrusive
membership array (swap-remove with a per-block position table), so
every state transition a block can make is a constant-time bucket move:

* **block fills** (``FlashArray.program``/``program_run`` reaches the
  block's last page) — enters the bucket for its current invalid count,
  if it already holds invalid pages;
* **page invalidated** (``FlashArray.invalidate``) — member blocks move
  up one bucket; a full non-member with its first invalid page enters
  bucket 1;
* **block erased** (``FlashArray.erase``) — leaves the index.

Eligibility mirrors ``BlockAllocator.victim_candidates_mask`` exactly:
fully written and holding at least one invalid page.  Active blocks are
never fully written (the allocator retires a block from its active slot
the moment it fills), so "full" already implies "not active" and no
allocator callback is needed.

Greedy selection becomes "pop the highest nonempty bucket" (amortized
O(1): the max-bucket cursor only walks down as far as erases pushed it
up), with ties broken to the lowest block id — bit-identical to the
masked-argmax oracle the policies keep as their reference path.  Cost-
benefit and random policies enumerate candidates through
:meth:`iter_buckets` / :meth:`sorted_candidates` in O(candidates)
instead of O(blocks).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np


class VictimIndex:
    """Buckets of GC-eligible blocks keyed by invalid-page count."""

    __slots__ = ("_flash", "_ppb", "_bucket_of", "_pos", "_buckets", "_max", "_size")

    def __init__(self, flash) -> None:
        self._flash = flash
        ppb = flash.pages_per_block
        self._ppb = ppb
        blocks = flash.blocks
        #: invalid-count bucket a block sits in, or -1 when not a member.
        self._bucket_of: List[int] = [-1] * blocks
        #: position of a member block inside its bucket (swap-remove).
        self._pos: List[int] = [0] * blocks
        self._buckets: List[List[int]] = [[] for _ in range(ppb + 1)]
        #: upper bound on the highest nonempty bucket (lazily tightened).
        self._max = 0
        self._size = 0
        self.rebuild()

    def __len__(self) -> int:
        return self._size

    # -- mutation hooks (called from FlashArray) -------------------------------

    def on_block_full(self, block: int, invalid: int) -> None:
        """A block's last page just programmed; index it if reclaimable."""
        if invalid > 0:
            self._add(block, invalid)

    def on_invalidate(self, block: int, invalid: int) -> None:
        """A page of ``block`` went VALID -> INVALID (count now ``invalid``)."""
        bucket_of = self._bucket_of
        cur = bucket_of[block]
        if cur >= 0:
            # Member: move up one bucket (invalid == cur + 1).
            pos = self._pos
            old = self._buckets[cur]
            i = pos[block]
            last = old.pop()
            if last != block:
                old[i] = last
                pos[last] = i
            new = self._buckets[invalid]
            pos[block] = len(new)
            new.append(block)
            bucket_of[block] = invalid
            if invalid > self._max:
                self._max = invalid
        elif self._flash.write_ptr[block] == self._ppb:
            # Full block gaining its first invalid page becomes eligible.
            self._add(block, invalid)

    def on_erase(self, block: int) -> None:
        """Block erased: it leaves the candidate set."""
        if self._bucket_of[block] >= 0:
            self._remove(block)

    def sync_block(self, block: int, invalid: int, full: bool) -> None:
        """Force one block's membership to match its flash end state.

        The batched write kernel applies a run's programs and
        invalidations out of order and reconciles the index afterwards:
        final membership only depends on the block's final ``(full,
        invalid)`` state, never on the interleaving that produced it.
        """
        want = invalid if (full and invalid > 0) else -1
        cur = self._bucket_of[block]
        if cur == want:
            return
        if cur >= 0:
            self._remove(block)
        if want >= 0:
            self._add(block, want)

    def rebuild(self) -> None:
        """Re-derive the whole index from flash state (O(blocks)).

        Used at construction and available to tests; steady-state
        maintenance never calls this.
        """
        flash = self._flash
        for bucket in self._buckets:
            bucket.clear()
        blocks = flash.blocks
        self._bucket_of = [-1] * blocks
        self._pos = [0] * blocks
        self._max = 0
        self._size = 0
        full = np.nonzero(
            (flash.write_ptr == self._ppb) & (flash.invalid_count > 0)
        )[0]
        for block in full.tolist():
            self._add(block, int(flash.invalid_count[block]))

    # -- internal bucket ops ---------------------------------------------------

    def _add(self, block: int, invalid: int) -> None:
        bucket = self._buckets[invalid]
        self._pos[block] = len(bucket)
        bucket.append(block)
        self._bucket_of[block] = invalid
        self._size += 1
        if invalid > self._max:
            self._max = invalid

    def _remove(self, block: int) -> None:
        pos = self._pos
        bucket = self._buckets[self._bucket_of[block]]
        i = pos[block]
        last = bucket.pop()
        if last != block:
            bucket[i] = last
            pos[last] = i
        self._bucket_of[block] = -1
        self._size -= 1

    # -- selection views -------------------------------------------------------

    def top_block(self) -> int:
        """Lowest-id block in the highest nonempty bucket, or -1.

        The greedy victim: maximum invalid-page count, ties to the
        lowest block id — the same answer as ``argmax`` over the masked
        invalid-count array.
        """
        b = self._max
        buckets = self._buckets
        while b > 0 and not buckets[b]:
            b -= 1
        self._max = b
        if b == 0:
            return -1
        return min(buckets[b])

    def iter_buckets(self) -> Iterator[Tuple[int, List[int]]]:
        """Nonempty buckets as ``(invalid_count, blocks)``, descending.

        The yielded lists are the live membership arrays: callers must
        not mutate them or the index while iterating.
        """
        buckets = self._buckets
        b = self._max
        while b > 0 and not buckets[b]:
            b -= 1
        self._max = b
        for inv in range(b, 0, -1):
            bucket = buckets[inv]
            if bucket:
                yield inv, bucket

    def sorted_candidates(self) -> np.ndarray:
        """All candidate blocks, ascending, as an int64 array.

        Matches ``np.nonzero(mask)[0]`` on the oracle mask — the array
        the random policy draws from, so seeded runs stay bit-identical.
        """
        size = self._size
        if size == 0:
            return np.empty(0, dtype=np.int64)
        out = np.empty(size, dtype=np.int64)
        offset = 0
        for bucket in self._buckets:
            n = len(bucket)
            if n:
                out[offset : offset + n] = bucket
                offset += n
        out.sort()
        return out

    def candidates_mask(self) -> np.ndarray:
        """Boolean eligibility mask over all blocks (fallback/oracle view)."""
        mask = np.zeros(self._flash.blocks, dtype=bool)
        for bucket in self._buckets:
            if bucket:
                mask[bucket] = True
        return mask

    # -- invariants ------------------------------------------------------------

    def check_consistency(self, allocator) -> None:
        """Full cross-check against flash state and the oracle mask
        (tests only: O(blocks))."""
        flash = self._flash
        seen = 0
        for inv, bucket in enumerate(self._buckets):
            for i, block in enumerate(bucket):
                if self._bucket_of[block] != inv:
                    raise AssertionError(
                        f"block {block} in bucket {inv} but bucket_of says "
                        f"{self._bucket_of[block]}"
                    )
                if self._pos[block] != i:
                    raise AssertionError(f"block {block} position desynced")
                if int(flash.invalid_count[block]) != inv:
                    raise AssertionError(
                        f"block {block} indexed at invalid={inv} but flash "
                        f"says {int(flash.invalid_count[block])}"
                    )
                seen += 1
        if seen != self._size:
            raise AssertionError(f"index size {self._size} != members {seen}")
        if not np.array_equal(self.candidates_mask(), allocator.victim_candidates_mask()):
            raise AssertionError("victim index disagrees with the oracle mask")
