"""Greedy victim selection: most invalid pages first.

The paper's default policy (section IV-A): erasing the block with the
most invalid pages reclaims the most space per erase and migrates the
fewest valid pages.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.flash.chip import FlashArray
from repro.ftl.gc.policy import VictimPolicy


class GreedyPolicy(VictimPolicy):
    """Select the candidate block with the maximum invalid-page count."""

    name = "greedy"

    def select(
        self, flash: FlashArray, candidates: np.ndarray, now_us: float
    ) -> Optional[int]:
        if not candidates.any():
            return None
        # Masked argmax without copying the counter array: invalid pages
        # are >= 1 for every candidate, so zeroing non-candidates suffices.
        scores = np.where(candidates, flash.invalid_count, 0)
        block = int(scores.argmax())
        return block if candidates[block] else None
