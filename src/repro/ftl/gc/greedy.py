"""Greedy victim selection: most invalid pages first.

The paper's default policy (section IV-A): erasing the block with the
most invalid pages reclaims the most space per erase and migrates the
fewest valid pages.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.flash.chip import FlashArray
from repro.ftl.gc.policy import VictimPolicy


class GreedyPolicy(VictimPolicy):
    """Select the candidate block with the maximum invalid-page count."""

    name = "greedy"

    def __init__(self) -> None:
        #: reusable scores buffer for the reference/fallback path, so a
        #: masked argmax never allocates a fresh array per call.
        self._scratch: Optional[np.ndarray] = None

    def select(
        self, flash: FlashArray, candidates: np.ndarray, now_us: float
    ) -> Optional[int]:
        # Masked argmax without copying the counter array: invalid pages
        # are >= 1 for every candidate, so zeroing non-candidates
        # suffices.  The multiply lands in a reused scratch buffer.
        scratch = self._scratch
        if scratch is None or scratch.shape != candidates.shape:
            self._scratch = scratch = np.empty_like(flash.invalid_count)
        np.multiply(flash.invalid_count, candidates, out=scratch)
        block = int(scratch.argmax())
        return block if candidates[block] else None

    def select_indexed(
        self,
        flash: FlashArray,
        index,
        now_us: float,
        region_arr: Optional[np.ndarray] = None,
        region: int = -1,
    ) -> Optional[int]:
        if region_arr is None:
            block = index.top_block()
            return block if block >= 0 else None
        # Region-filtered: highest bucket containing a matching block,
        # lowest id within it — identical to argmax over the masked scan.
        for _inv, bucket in index.iter_buckets():
            best = -1
            for block in bucket:
                if region_arr[block] == region and (best < 0 or block < best):
                    best = block
            if best >= 0:
                return best
        return None
