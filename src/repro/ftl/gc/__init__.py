"""Victim-block selection policies for garbage collection.

The paper's sensitivity study (section IV-C, Fig 13) evaluates CAGC
under three classic policies; all three are implemented here behind a
common interface so any FTL scheme composes with any policy.
"""

from repro.ftl.gc.policy import VictimPolicy
from repro.ftl.gc.random_policy import RandomPolicy
from repro.ftl.gc.greedy import GreedyPolicy
from repro.ftl.gc.cost_benefit import CostBenefitPolicy
from repro.ftl.gc.region_aware import RegionAwarePolicy
from repro.ftl.gc.index import VictimIndex

POLICIES = {
    "random": RandomPolicy,
    "greedy": GreedyPolicy,
    "cost-benefit": CostBenefitPolicy,
}


def make_policy(name: str, seed: int = 0) -> VictimPolicy:
    """Instantiate a victim policy by name (``random``, ``greedy``,
    ``cost-benefit``)."""
    try:
        cls = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown victim policy {name!r}; choose from {sorted(POLICIES)}"
        ) from None
    if cls is RandomPolicy:
        return RandomPolicy(seed=seed)
    return cls()


__all__ = [
    "VictimPolicy",
    "VictimIndex",
    "RandomPolicy",
    "GreedyPolicy",
    "CostBenefitPolicy",
    "RegionAwarePolicy",
    "POLICIES",
    "make_policy",
]
