"""Region-aware victim preference (paper section III-C).

"The flash blocks in the Hot Region are desirable candidates for victim
blocks since they are likely to contain very few valid pages" — this
wrapper restricts any base policy's candidate set to hot-region blocks
and falls back to the full set only when the hot region offers no
victim.  Cold-region blocks (highly-shared pages) are then never
disturbed unless the device has nothing else to reclaim.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.flash.chip import FlashArray
from repro.ftl.allocator import BlockAllocator, Region
from repro.ftl.gc.policy import VictimPolicy


class RegionAwarePolicy(VictimPolicy):
    """Wraps a base policy, preferring hot-region victims."""

    def __init__(self, base: VictimPolicy, allocator: BlockAllocator) -> None:
        self.base = base
        self.allocator = allocator
        self.name = f"hot-first({base.name})"

    def select(
        self, flash: FlashArray, candidates: np.ndarray, now_us: float
    ) -> Optional[int]:
        hot_only = candidates & (self.allocator.block_region == Region.HOT)
        if hot_only.any():
            return self.base.select(flash, hot_only, now_us)
        return self.base.select(flash, candidates, now_us)

    def select_indexed(
        self,
        flash: FlashArray,
        index,
        now_us: float,
        region_arr: Optional[np.ndarray] = None,
        region: int = -1,
    ) -> Optional[int]:
        # Hot-first through the index: the base policy filters candidate
        # buckets by region tag, so no O(blocks) mask is materialized.
        # Every built-in base policy returns a victim whenever the
        # filtered set is nonempty, matching the mask path's any() gate
        # (and drawing from the RNG only when it would have).
        victim = self.base.select_indexed(
            flash, index, now_us,
            region_arr=self.allocator.block_region, region=Region.HOT,
        )
        if victim is not None:
            return victim
        return self.base.select_indexed(flash, index, now_us)
