"""Region composition statistics.

Section III-C predicts that under CAGC the cold region's blocks hold
almost exclusively valid (highly-shared) pages while hot-region blocks
fill with invalid pages quickly.  These helpers measure exactly that,
per region: block counts, page-state densities, and the mean reference
count of resident pages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.flash.chip import PageState
from repro.ftl.allocator import Region


@dataclass(frozen=True)
class RegionStats:
    """Page-state composition of one region's blocks."""

    region: int
    blocks: int
    valid_pages: int
    invalid_pages: int
    free_pages: int
    mean_refcount: float

    @property
    def name(self) -> str:
        return Region.NAMES.get(self.region, str(self.region))

    @property
    def invalid_density(self) -> float:
        """Invalid fraction of the region's written pages."""
        written = self.valid_pages + self.invalid_pages
        return self.invalid_pages / written if written else 0.0

    @property
    def valid_density(self) -> float:
        written = self.valid_pages + self.invalid_pages
        return self.valid_pages / written if written else 0.0


def region_stats(scheme) -> Dict[str, RegionStats]:
    """Compute :class:`RegionStats` for every region of a scheme's FTL."""
    flash = scheme.flash
    allocator = scheme.allocator
    mapping = scheme.mapping
    out: Dict[str, RegionStats] = {}
    ppb = flash.pages_per_block
    for region in (Region.HOT, Region.COLD):
        blocks = np.nonzero(allocator.block_region == region)[0]
        valid = int(flash.valid_count[blocks].sum())
        invalid = int(flash.invalid_count[blocks].sum())
        free = int(len(blocks) * ppb - flash.write_ptr[blocks].sum())
        refcounts = []
        for block in blocks:
            base = int(block) * ppb
            for offset in range(int(flash.write_ptr[block])):
                ppn = base + offset
                if flash.page_state[ppn] == PageState.VALID:
                    refcounts.append(mapping.refcount(ppn))
        stats = RegionStats(
            region=region,
            blocks=int(len(blocks)),
            valid_pages=valid,
            invalid_pages=invalid,
            free_pages=free,
            mean_refcount=float(np.mean(refcounts)) if refcounts else 0.0,
        )
        out[stats.name] = stats
    return out
