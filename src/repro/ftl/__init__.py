"""Flash Translation Layer substrate: mapping, allocation, regions, wear."""

from repro.ftl.mapping import MappingTable
from repro.ftl.allocator import (
    BlockAllocator,
    WearAwareAllocator,
    Region,
    DeviceFullError,
)
from repro.ftl.wear import WearStats, wear_stats
from repro.ftl.regions import RegionStats, region_stats

__all__ = [
    "RegionStats",
    "region_stats",
    "MappingTable",
    "BlockAllocator",
    "WearAwareAllocator",
    "Region",
    "DeviceFullError",
    "WearStats",
    "wear_stats",
]
