"""Free-block pool and per-region active-block page allocation.

The allocator owns the free-block pool and one *active block* per
region (write stream).  User and GC writes ask for the next page in the
region's active block; when it fills, a fresh block is pulled from the
pool and tagged with the region.  Erased blocks return to the pool and
lose their tag.

CAGC's hot/cold separation (paper section III-C) is expressed as two
regions; the Baseline and Inline-Dedupe schemes allocate everything from
the HOT region.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

import numpy as np

from repro.flash.chip import FlashArray


class Region:
    """Write streams; values index per-region bookkeeping arrays."""

    HOT = 0
    COLD = 1

    NAMES = {HOT: "hot", COLD: "cold"}


class DeviceFullError(RuntimeError):
    """No free block available — the FTL over-committed physical space."""


class BlockAllocator:
    """Tracks free blocks and serves page allocations per region."""

    def __init__(self, flash: FlashArray) -> None:
        self.flash = flash
        self._free: Deque[int] = deque(range(flash.blocks))
        self._active: Dict[int, Optional[int]] = {Region.HOT: None, Region.COLD: None}
        #: Free pages left in each region's active block (hot-path
        #: counter, saves two array reads per page allocation).
        self._active_free: Dict[int, int] = {Region.HOT: 0, Region.COLD: 0}
        self._pages_per_block = flash.pages_per_block
        #: Region tag per block; -1 = untagged (free / never used).
        self.block_region = np.full(flash.blocks, -1, dtype=np.int8)
        #: Live block count per region (indexed by Region.*).
        self.region_blocks: Dict[int, int] = {Region.HOT: 0, Region.COLD: 0}

    # -- pool state ------------------------------------------------------------

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    def free_fraction(self) -> float:
        return len(self._free) / self.flash.blocks

    def is_active(self, block: int) -> bool:
        return block in (self._active[Region.HOT], self._active[Region.COLD])

    def active_block(self, region: int) -> Optional[int]:
        return self._active[region]

    def region_of(self, block: int) -> int:
        return int(self.block_region[block])

    # -- allocation ------------------------------------------------------------

    def allocate_page(self, region: int, now_us: float = 0.0) -> int:
        """Program the next page of ``region``'s active block.

        Returns the PPN.  Pulls a fresh free block when the active block
        is full; raises :class:`DeviceFullError` when the pool is empty —
        the device layer must GC before that happens.
        """
        block = self._active[region]
        if block is None:
            block = self._pull_free(region)
        ppn = self.flash.program(block, now_us)
        left = self._active_free[region] - 1
        self._active_free[region] = left
        if left == 0:
            self._active[region] = None  # full blocks leave the active slot
        return ppn

    def release_block(self, block: int) -> None:
        """Return an erased block to the free pool (after GC erase)."""
        if self.is_active(block):
            raise RuntimeError(f"cannot release active block {block}")
        region = int(self.block_region[block])
        if region != -1:
            self.region_blocks[region] -= 1
        self.block_region[block] = -1
        self._free.append(block)

    def _pull_free(self, region: int) -> int:  # overridden by WearAwareAllocator
        return self._take_block(0, region) if self._free else self._no_free()

    def _take_block(self, index: int, region: int) -> int:
        block = self._free[index]
        del self._free[index]
        self.block_region[block] = region
        self.region_blocks[region] += 1
        self._active[region] = block
        # Fresh blocks come erased (write_ptr == 0, see check_invariants).
        self._active_free[region] = self._pages_per_block
        return block

    def _no_free(self) -> int:
        raise DeviceFullError(
            "no free flash block (GC watermark set too low or workload "
            "exceeds logical capacity)"
        )

    # -- GC candidate enumeration ---------------------------------------------

    def victim_candidates_mask(self) -> np.ndarray:
        """Boolean mask of blocks eligible as GC victims.

        Eligible = fully written, not an active write block, and holding
        at least one invalid page (erasing a fully-valid block reclaims
        nothing).
        """
        flash = self.flash
        mask = (flash.write_ptr == flash.pages_per_block) & (flash.invalid_count > 0)
        for region in (Region.HOT, Region.COLD):
            active = self._active[region]
            if active is not None:
                mask[active] = False
        return mask

    # -- invariants ---------------------------------------------------------------

    def check_invariants(self) -> None:
        free = set(self._free)
        if len(free) != len(self._free):
            raise AssertionError("duplicate block in free pool")
        for block in free:
            if self.flash.write_ptr[block] != 0:
                raise AssertionError(f"free block {block} has programmed pages")
            if self.block_region[block] != -1:
                raise AssertionError(f"free block {block} still tagged")
        for region, active in self._active.items():
            if active is not None and active in free:
                raise AssertionError(f"active block {active} is also free")
            if active is not None and self.block_region[active] != region:
                raise AssertionError(f"active block {active} tagged wrong region")
            if active is not None and self._active_free[region] != self.flash.free_pages_in(active):
                raise AssertionError(
                    f"active block {active}: cached free-page count "
                    f"{self._active_free[region]} != flash "
                    f"{self.flash.free_pages_in(active)}"
                )
        for region in (Region.HOT, Region.COLD):
            tagged = int((self.block_region == region).sum())
            if tagged != self.region_blocks[region]:
                raise AssertionError(
                    f"region {Region.NAMES[region]} count {self.region_blocks[region]} "
                    f"!= tagged blocks {tagged}"
                )


class WearAwareAllocator(BlockAllocator):
    """Allocator practicing dynamic wear leveling.

    New active blocks are drawn least-worn-first instead of FIFO, so
    erase cycles spread evenly across the array — the wear-leveling
    concern the paper's victim-selection discussion raises against pure
    greedy GC.  O(free blocks) per block pull, amortized over
    ``pages_per_block`` page allocations.
    """

    def _pull_free(self, region: int) -> int:
        if not self._free:
            self._no_free()
        erase_count = self.flash.erase_count
        index = min(range(len(self._free)), key=lambda i: erase_count[self._free[i]])
        return self._take_block(index, region)
