"""Free-block pool and per-region active-block page allocation.

The allocator owns the free-block pool and one *active block* per
region (write stream).  User and GC writes ask for the next page in the
region's active block; when it fills, a fresh block is pulled from the
pool and tagged with the region.  Erased blocks return to the pool and
lose their tag.

CAGC's hot/cold separation (paper section III-C) is expressed as two
regions; the Baseline and Inline-Dedupe schemes allocate everything from
the HOT region.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.flash.chip import FlashArray


class Region:
    """Write streams; values index per-region bookkeeping arrays."""

    HOT = 0
    COLD = 1

    NAMES = {HOT: "hot", COLD: "cold"}


class DeviceFullError(RuntimeError):
    """No free block available — the FTL over-committed physical space."""


class BlockAllocator:
    """Tracks free blocks and serves page allocations per region."""

    def __init__(self, flash: FlashArray) -> None:
        self.flash = flash
        self._active: Dict[int, Optional[int]] = {Region.HOT: None, Region.COLD: None}
        #: Free pages left in each region's active block (hot-path
        #: counter, saves two array reads per page allocation).
        self._active_free: Dict[int, int] = {Region.HOT: 0, Region.COLD: 0}
        self._pages_per_block = flash.pages_per_block
        #: Region tag per block; -1 = untagged (free / never used).
        self.block_region = np.full(flash.blocks, -1, dtype=np.int8)
        #: Live block count per region (indexed by Region.*).
        self.region_blocks: Dict[int, int] = {Region.HOT: 0, Region.COLD: 0}
        self._init_pool(flash.blocks)

    # -- pool storage (overridden by WearAwareAllocator) -----------------------

    def _init_pool(self, blocks: int) -> None:
        self._free: Deque[int] = deque(range(blocks))

    def _pool_members(self) -> Iterable[int]:
        """Iterable over the free pool (invariant checks only)."""
        return self._free

    def _pool_add(self, block: int) -> None:
        self._free.append(block)

    def _pool_take(self) -> int:
        """Remove and return the next free block (FIFO order)."""
        if not self._free:
            self._no_free()
        return self._free.popleft()

    # -- pool state ------------------------------------------------------------

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    def free_fraction(self) -> float:
        return self.free_blocks / self.flash.blocks

    def is_active(self, block: int) -> bool:
        return block in (self._active[Region.HOT], self._active[Region.COLD])

    def active_block(self, region: int) -> Optional[int]:
        return self._active[region]

    def region_of(self, block: int) -> int:
        return int(self.block_region[block])

    # -- allocation ------------------------------------------------------------

    def allocate_page(self, region: int, now_us: float = 0.0) -> int:
        """Program the next page of ``region``'s active block.

        Returns the PPN.  Pulls a fresh free block when the active block
        is full; raises :class:`DeviceFullError` when the pool is empty —
        the device layer must GC before that happens.
        """
        block = self._active[region]
        if block is None:
            block = self._pull_free(region)
        ppn = self.flash.program(block, now_us)
        left = self._active_free[region] - 1
        self._active_free[region] = left
        if left == 0:
            self._active[region] = None  # full blocks leave the active slot
        return ppn

    def allocate_run(self, region: int, max_pages: int, now_us: float = 0.0) -> Tuple[int, int]:
        """Program up to ``max_pages`` consecutive pages in one sweep.

        Bulk counterpart of :meth:`allocate_page`: fills the region's
        active block with one :meth:`FlashArray.program_run` instead of
        per-page calls.  Returns ``(first_ppn, count)`` where ``count``
        is capped by the active block's remaining space — callers loop
        until their request is fully placed (pulling a fresh block costs
        one extra iteration).
        """
        block = self._active[region]
        if block is None:
            block = self._pull_free(region)
        count = self._active_free[region]
        if max_pages < count:
            count = max_pages
        first_ppn = self.flash.program_run(block, count, now_us)
        left = self._active_free[region] - count
        self._active_free[region] = left
        if left == 0:
            self._active[region] = None
        return first_ppn, count

    def release_block(self, block: int) -> None:
        """Return an erased block to the free pool (after GC erase)."""
        if self.is_active(block):
            raise RuntimeError(f"cannot release active block {block}")
        region = int(self.block_region[block])
        if region != -1:
            self.region_blocks[region] -= 1
        self.block_region[block] = -1
        self._pool_add(block)

    def _pull_free(self, region: int) -> int:
        return self._bind_active(self._pool_take(), region)

    def _bind_active(self, block: int, region: int) -> int:
        self.block_region[block] = region
        self.region_blocks[region] += 1
        self._active[region] = block
        # Fresh blocks come erased (write_ptr == 0, see check_invariants).
        self._active_free[region] = self._pages_per_block
        return block

    def _no_free(self) -> int:
        raise DeviceFullError(
            "no free flash block (GC watermark set too low or workload "
            "exceeds logical capacity)"
        )

    # -- GC candidate enumeration ---------------------------------------------

    def victim_candidates_mask(self) -> np.ndarray:
        """Boolean mask of blocks eligible as GC victims.

        Eligible = fully written, not an active write block, and holding
        at least one invalid page (erasing a fully-valid block reclaims
        nothing).  This is the O(blocks) reference derivation; the hot
        path keeps the same set incrementally in a
        :class:`repro.ftl.gc.index.VictimIndex`.
        """
        flash = self.flash
        mask = (flash.write_ptr == flash.pages_per_block) & (flash.invalid_count > 0)
        for region in (Region.HOT, Region.COLD):
            active = self._active[region]
            if active is not None:
                mask[active] = False
        return mask

    # -- invariants ---------------------------------------------------------------

    def check_invariants(self) -> None:
        members = list(self._pool_members())
        free = set(members)
        if len(free) != len(members):
            raise AssertionError("duplicate block in free pool")
        if len(free) != self.free_blocks:
            raise AssertionError("free pool size desynced from free_blocks")
        for block in free:
            if self.flash.write_ptr[block] != 0:
                raise AssertionError(f"free block {block} has programmed pages")
            if self.block_region[block] != -1:
                raise AssertionError(f"free block {block} still tagged")
        for region, active in self._active.items():
            if active is not None and active in free:
                raise AssertionError(f"active block {active} is also free")
            if active is not None and self.block_region[active] != region:
                raise AssertionError(f"active block {active} tagged wrong region")
            if active is not None and self._active_free[region] != self.flash.free_pages_in(active):
                raise AssertionError(
                    f"active block {active}: cached free-page count "
                    f"{self._active_free[region]} != flash "
                    f"{self.flash.free_pages_in(active)}"
                )
        for region in (Region.HOT, Region.COLD):
            tagged = int((self.block_region == region).sum())
            if tagged != self.region_blocks[region]:
                raise AssertionError(
                    f"region {Region.NAMES[region]} count {self.region_blocks[region]} "
                    f"!= tagged blocks {tagged}"
                )


class WearAwareAllocator(BlockAllocator):
    """Allocator practicing dynamic wear leveling.

    New active blocks are drawn least-worn-first instead of FIFO, so
    erase cycles spread evenly across the array — the wear-leveling
    concern the paper's victim-selection discussion raises against pure
    greedy GC.  The pool is a min-heap keyed by ``(erase_count, block)``
    with lazy invalidation: a popped entry whose erase count no longer
    matches the block's current counter (or whose block already left the
    pool) is stale and discarded, so a pull is O(log free-blocks)
    amortized instead of the seed's O(free-blocks) min-scan.
    """

    def _init_pool(self, blocks: int) -> None:
        self._free_set: Set[int] = set(range(blocks))
        erase_count = self.flash.erase_count
        self._heap: List[Tuple[int, int]] = [
            (int(erase_count[block]), block) for block in range(blocks)
        ]
        heapq.heapify(self._heap)

    def _pool_members(self) -> Iterable[int]:
        return self._free_set

    def _pool_add(self, block: int) -> None:
        self._free_set.add(block)
        heapq.heappush(self._heap, (int(self.flash.erase_count[block]), block))

    def _pool_take(self) -> int:
        erase_count = self.flash.erase_count
        free_set = self._free_set
        heap = self._heap
        while heap:
            count, block = heapq.heappop(heap)
            if block not in free_set:
                continue  # stale: block already left the pool
            current = int(erase_count[block])
            if count != current:
                # Erase count moved while pooled (e.g. a direct erase of
                # a free block): re-file under the fresh key.
                heapq.heappush(heap, (current, block))
                continue
            free_set.discard(block)
            return block
        self._no_free()

    @property
    def free_blocks(self) -> int:
        return len(self._free_set)
