"""Reference-count-based data page placement (paper Section III-C).

Pages whose reference count reaches ``cold_threshold`` are *cold*: a
delete/update of one sharer merely decrements the count, so the page is
very unlikely to become invalid — storing such pages together yields
blocks that essentially never need GC.  Refcount-1 pages are *hot*:
they die on the first overwrite, so hot-region blocks fill with invalid
pages quickly and make ideal (cheap) GC victims.

The policy also enforces a cap on the cold region's share of physical
blocks so pathological workloads (everything duplicated) cannot starve
the hot write stream; overflow falls back to the hot region, which only
costs efficiency, never correctness.

Demotion is lazy: a cold page whose refcount has dropped below the
threshold is simply placed back in the hot region the next time GC
migrates it (the "Demotion" arrow of Fig 4).
"""

from __future__ import annotations

from repro.config import SSDConfig
from repro.ftl.allocator import BlockAllocator, Region


class PlacementPolicy:
    """Decides the target region of each page CAGC writes."""

    def __init__(self, config: SSDConfig) -> None:
        self.cold_threshold = config.cold_threshold
        self._max_cold_blocks = int(config.geometry.blocks * config.cold_region_ratio)

    def is_cold(self, refcount: int) -> bool:
        """Cold classification by reference count alone."""
        return refcount >= self.cold_threshold

    def region_for(self, refcount: int, allocator: BlockAllocator) -> int:
        """Target region for a page with ``refcount`` referrers.

        Falls back to HOT when the cold region is at its block budget.
        """
        if not self.is_cold(refcount):
            return Region.HOT
        if allocator.region_blocks[Region.COLD] >= self._max_cold_blocks:
            return Region.HOT
        return Region.COLD

    def should_promote(
        self, refcount: int, current_region: int, allocator: BlockAllocator
    ) -> bool:
        """Promote a canonical page to the cold region?

        Triggered when a GC dedup hit raises the page's refcount to (or
        past) the threshold while it still lives in the hot region —
        the "Ref. == threshold? -> Data migration" branch of Fig 5.
        """
        return (
            current_region != Region.COLD
            and self.is_cold(refcount)
            and allocator.region_blocks[Region.COLD] < self._max_cold_blocks
        )


class NeverColdPlacement(PlacementPolicy):
    """Placement ablation: classify nothing as cold.

    Running CAGC with this policy isolates the GC-time dedup win from
    the refcount-placement win (ablation A2): duplicates still remap
    instead of copying, but every page stays in the hot region.
    """

    def is_cold(self, refcount: int) -> bool:
        return False
