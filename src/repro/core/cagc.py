"""The Content-Aware Garbage Collection scheme (paper Section III).

CAGC keeps the foreground write path identical to the Baseline — no
hashing, no lookup, full ULL write latency and nothing more — and does
its deduplication work inside GC, where the hash engine runs in
parallel with page reads, page writes and the block erase
(:class:`repro.core.pipeline.GCPipeline`).

Collection of a victim block (workflow of Fig 5):

1. read each valid page and hash it (pipelined);
2. look the fingerprint up in the index;
3. **hit** — the content already has a canonical copy elsewhere: remap
   all of the victim page's referrers onto the canonical page (no
   write), bump its reference count, and if the count just reached the
   cold threshold, *promote* the canonical page to the cold region;
4. **miss** — write the page to a region chosen by its reference count
   (cold if >= threshold, else hot) and make it the canonical copy for
   its content;
5. after all valid pages are resolved, erase the victim.

The reference-count placement means hot-region blocks accumulate
invalid pages rapidly (cheap victims) while cold-region blocks hold
highly-shared pages that almost never die — which is what cuts both
the pages-migrated and blocks-erased counts in Figs 9/10.
"""

from __future__ import annotations

from typing import Optional

from repro.config import SSDConfig
from repro.core.pipeline import GCPipeline
from repro.core.placement import PlacementPolicy
from repro.flash.chip import PageState
from repro.ftl.allocator import Region
from repro.ftl.gc.policy import VictimPolicy
from repro.schemes.base import FTLScheme, GCBlockOutcome, WriteOutcome

_ONE_PROGRAM = WriteOutcome(programs=1, hashed_pages=0, dedup_hits=0)


class CAGCScheme(FTLScheme):
    """Content-aware GC with reference-count hot/cold placement."""

    name = "cagc"
    #: Foreground writes are baseline-identical (dedup deferred to GC),
    #: so they qualify for the bulk program-run fast path.
    bulk_user_writes = True

    def __init__(
        self,
        config: SSDConfig,
        policy: Optional[VictimPolicy] = None,
        placement: Optional[PlacementPolicy] = None,
        prefer_hot_victims: bool = False,
    ) -> None:
        super().__init__(config, policy=policy)
        self.placement = placement if placement is not None else PlacementPolicy(config)
        if prefer_hot_victims:
            # Section III-C: hot-region blocks are the desirable victims;
            # cold blocks are only touched when nothing else is eligible.
            from repro.ftl.gc.region_aware import RegionAwarePolicy

            self.policy = RegionAwarePolicy(self.policy, self.allocator)

    # ------------------------------------------------------------------ write path

    def write_page(self, lpn: int, fp: int, now_us: float) -> WriteOutcome:
        """Foreground writes are baseline-fast: program into the hot
        region, dedup deferred to GC."""
        self._program_new(lpn, fp, Region.HOT, now_us)
        return _ONE_PROGRAM

    # ------------------------------------------------------------------ GC

    def collect_block(self, victim: int, now_us: float) -> GCBlockOutcome:
        valid = self.flash.valid_ppns_array(victim)
        # Batched hash pass (Fig 5's hash engine): every valid page's
        # fingerprint is gathered in one vectorized sweep before the
        # migrate loop, instead of one store probe per page inside it.
        # Safe because a still-VALID page's fingerprint never changes
        # mid-pass — merges and migrations only clear fps of pages they
        # invalidate, and those are skipped by the state check below.
        fps = self.page_fp.gather(valid).tolist()
        valid = valid.tolist()
        tracer = self.tracer
        pipeline = GCPipeline(self.timing, tracer=tracer, base_us=now_us)
        examined = 0
        migrated = 0
        skipped = 0
        promotions = 0
        for pos, ppn in enumerate(valid):
            # A promotion earlier in this pass may have already consumed
            # this page (canonical living inside the victim).
            if self.flash.state_of(ppn) != PageState.VALID:
                continue
            examined += 1
            fp = fps[pos]
            canonical = self.index.lookup(fp)
            if canonical is not None and canonical != ppn:
                self._dedup_merge(ppn, canonical)
                pipeline.process_page(write=False, ppn=ppn)
                skipped += 1
                if self._maybe_promote(canonical, now_us):
                    pipeline.extra_copy(ppn=canonical)
                    promotions += 1
                    if tracer is not None:
                        tracer.instant("gc", "promote", now_us, canonical=canonical)
            else:
                refcount = self.mapping.refcount(ppn)
                region = self.placement.region_for(refcount, self.allocator)
                new_ppn = self._migrate_page(ppn, region, now_us)
                if canonical is None:
                    # First GC pass over this content: it becomes the
                    # canonical copy future duplicates merge into.
                    self.index.insert(fp, new_ppn)
                pipeline.process_page(write=True, ppn=ppn)
                migrated += 1
        self._erase_victim(victim)
        t = self.timing
        outcome = GCBlockOutcome(
            victim=victim,
            duration_us=pipeline.finish(),
            pages_examined=examined,
            pages_migrated=migrated + promotions,
            dedup_skipped=skipped,
            promotions=promotions,
            # Resource occupancy, not critical path: in the overlapped
            # pipeline these legitimately sum to more than duration_us.
            read_us=(examined + promotions) * t.read_us,
            hash_us=examined * (t.hash_us + t.lookup_us),
            write_us=(migrated + promotions) * t.write_us,
            erase_us=t.erase_us,
        )
        self._account_gc(outcome)
        return outcome

    # ------------------------------------------------------------------ helpers

    def _dedup_merge(self, ppn: int, canonical: int) -> None:
        """Redirect every referrer of ``ppn`` onto ``canonical``
        (redundant page write eliminated)."""
        self.mapping.remap_ppn(ppn, canonical)
        self.tracker.observe(canonical, self.mapping.refcount(canonical))
        self.tracker.peaks.pop(ppn, None)  # history merges into canonical
        self.page_fp.pop(ppn, None)
        self.flash.invalidate(ppn)

    def _maybe_promote(self, canonical: int, now_us: float) -> bool:
        """Move a canonical page to the cold region once its refcount
        crosses the threshold (Fig 5's promotion branch)."""
        block = self.flash.geometry.ppn_to_block(canonical)
        region = self.allocator.region_of(block)
        refcount = self.mapping.refcount(canonical)
        if not self.placement.should_promote(refcount, region, self.allocator):
            return False
        self._migrate_page(canonical, Region.COLD, now_us)
        return True

    def _migration_region(self, ppn: int) -> int:  # pragma: no cover - base hook
        return self.placement.region_for(self.mapping.refcount(ppn), self.allocator)
