"""Timing model of CAGC's overlapped GC pipeline (paper Fig 5).

During CAGC's collection of a victim block three resources operate
concurrently:

* the **flash read path** — valid pages stream out of the victim, one
  page-read at a time;
* the **hash engine** — fingerprints each page as soon as it is read
  (plus a fingerprint-index lookup);
* the **flash write path** — pages judged unique are programmed to their
  target region; duplicates skip the write.

The per-block GC latency is the makespan of that three-stage pipeline
plus the block erase, which begins once the last page's migration is
resolved.  With ``t_hash`` comparable to ``t_write`` and ``t_erase`` two
orders of magnitude larger, hashing adds almost nothing to the critical
path — the parallelism claim of the paper's Section III-B.

Compare with the traditional (non-overlapped) GC of Fig 3, where each
page costs ``t_read + t_write`` serially:

>>> from repro.config import TimingConfig
>>> from repro.flash.timing import FlashTiming
>>> t = FlashTiming(TimingConfig())
>>> pipe = GCPipeline(t)
>>> for _ in range(10):
...     pipe.process_page(write=True)
>>> pipe.finish() < t.gc_migrate_us(10) + 10 * t.hash_us
True
"""

from __future__ import annotations

from repro.flash.timing import FlashTiming


class GCPipeline:
    """Accumulates the makespan of one victim block's migration.

    Call :meth:`process_page` once per valid page in migration order
    (``write=False`` for dedup hits), :meth:`extra_copy` for
    promotion/demotion copies, then :meth:`finish` for the total
    duration including the erase.
    """

    __slots__ = ("_timing", "_read_free", "_lanes_free", "_write_free")

    def __init__(self, timing: FlashTiming) -> None:
        self._timing = timing
        self._read_free = 0.0
        self._lanes_free = [0.0] * timing.hash_lanes
        self._write_free = 0.0

    def process_page(self, write: bool) -> None:
        """Advance the pipeline by one valid page.

        The page's read occupies the read path; its hash + lookup start
        when both the page data and a hash-engine lane are available; a
        unique page's program starts when the verdict is known and the
        write path is free.
        """
        t = self._timing
        read_done = self._read_free + t.read_us
        self._read_free = read_done
        lane = min(range(len(self._lanes_free)), key=self._lanes_free.__getitem__)
        hash_done = max(read_done, self._lanes_free[lane]) + t.hash_us + t.lookup_us
        self._lanes_free[lane] = hash_done
        if write:
            self._write_free = max(hash_done, self._write_free) + t.write_us

    def extra_copy(self) -> None:
        """A promotion/demotion copy: one read + one write, no hashing."""
        t = self._timing
        read_done = self._read_free + t.read_us
        self._read_free = read_done
        self._write_free = max(read_done, self._write_free) + t.write_us

    def finish(self) -> float:
        """Total block-collection latency: pipeline makespan + erase."""
        makespan = max(self._read_free, max(self._lanes_free), self._write_free)
        return makespan + self._timing.erase_us
