"""Timing model of CAGC's overlapped GC pipeline (paper Fig 5).

During CAGC's collection of a victim block three resources operate
concurrently:

* the **flash read path** — valid pages stream out of the victim, one
  page-read at a time;
* the **hash engine** — fingerprints each page as soon as it is read
  (plus a fingerprint-index lookup);
* the **flash write path** — pages judged unique are programmed to their
  target region; duplicates skip the write.

The per-block GC latency is the makespan of that three-stage pipeline
plus the block erase, which begins once the last page's migration is
resolved.  With ``t_hash`` comparable to ``t_write`` and ``t_erase`` two
orders of magnitude larger, hashing adds almost nothing to the critical
path — the parallelism claim of the paper's Section III-B.

Compare with the traditional (non-overlapped) GC of Fig 3, where each
page costs ``t_read + t_write`` serially:

>>> from repro.config import TimingConfig
>>> from repro.flash.timing import FlashTiming
>>> t = FlashTiming(TimingConfig())
>>> pipe = GCPipeline(t)
>>> for _ in range(10):
...     pipe.process_page(write=True)
>>> pipe.finish() < t.gc_migrate_us(10) + 10 * t.hash_us
True
"""

from __future__ import annotations

from repro.flash.timing import FlashTiming


class GCPipeline:
    """Accumulates the makespan of one victim block's migration.

    Call :meth:`process_page` once per valid page in migration order
    (``write=False`` for dedup hits), :meth:`extra_copy` for
    promotion/demotion copies, then :meth:`finish` for the total
    duration including the erase.

    With a :class:`repro.obs.Tracer` attached (``tracer`` + ``base_us``,
    the block's absolute start time), every stage occupancy becomes a
    span: page reads on ``gc.read``, hash + index lookup on one
    ``hash-lane-<i>`` track per engine lane, programs on ``gc.write``,
    and the trailing erase on ``gc`` — which is exactly the Fig 5
    overlap picture, viewable in Perfetto.  Untraced pipelines pay one
    ``is not None`` test per stage.
    """

    __slots__ = ("_timing", "_read_free", "_lanes_free", "_write_free",
                 "_tracer", "_base_us")

    def __init__(self, timing: FlashTiming, tracer=None, base_us: float = 0.0) -> None:
        self._timing = timing
        self._read_free = 0.0
        self._lanes_free = [0.0] * timing.hash_lanes
        self._write_free = 0.0
        self._tracer = tracer
        self._base_us = base_us

    def process_page(self, write: bool, ppn: int = -1) -> None:
        """Advance the pipeline by one valid page.

        The page's read occupies the read path; its hash + lookup start
        when both the page data and a hash-engine lane are available; a
        unique page's program starts when the verdict is known and the
        write path is free.  ``ppn`` only labels trace spans.
        """
        t = self._timing
        read_start = self._read_free
        read_done = read_start + t.read_us
        self._read_free = read_done
        lane = min(range(len(self._lanes_free)), key=self._lanes_free.__getitem__)
        hash_start = max(read_done, self._lanes_free[lane])
        hash_done = hash_start + t.hash_us + t.lookup_us
        self._lanes_free[lane] = hash_done
        if write:
            write_start = max(hash_done, self._write_free)
            self._write_free = write_start + t.write_us
        tracer = self._tracer
        if tracer is not None:
            base = self._base_us
            tracer.span("gc.read", "read", base + read_start, t.read_us, ppn=ppn)
            track = f"hash-lane-{lane}"
            tracer.span(track, "hash", base + hash_start, t.hash_us, ppn=ppn)
            tracer.span(
                track, "lookup", base + hash_start + t.hash_us, t.lookup_us, ppn=ppn
            )
            if write:
                tracer.span("gc.write", "migrate", base + write_start, t.write_us, ppn=ppn)

    def extra_copy(self, ppn: int = -1) -> None:
        """A promotion/demotion copy: one read + one write, no hashing."""
        t = self._timing
        read_start = self._read_free
        read_done = read_start + t.read_us
        self._read_free = read_done
        write_start = max(read_done, self._write_free)
        self._write_free = write_start + t.write_us
        tracer = self._tracer
        if tracer is not None:
            base = self._base_us
            tracer.span("gc.read", "read", base + read_start, t.read_us, ppn=ppn)
            tracer.span(
                "gc.write", "promote-copy", base + write_start, t.write_us, ppn=ppn
            )

    def finish(self) -> float:
        """Total block-collection latency: pipeline makespan + erase."""
        makespan = max(self._read_free, max(self._lanes_free), self._write_free)
        if self._tracer is not None:
            self._tracer.span(
                "gc", "erase", self._base_us + makespan, self._timing.erase_us
            )
        return makespan + self._timing.erase_us
