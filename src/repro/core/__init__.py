"""CAGC — the paper's primary contribution.

Content-Aware Garbage Collection embeds deduplication into the GC
valid-page migration loop (hiding the hash latency behind the flash
operations) and places pages into hot/cold regions by reference count.
"""

from repro.core.cagc import CAGCScheme
from repro.core.pipeline import GCPipeline
from repro.core.placement import PlacementPolicy

__all__ = ["CAGCScheme", "GCPipeline", "PlacementPolicy"]
