#!/usr/bin/env python
"""Differential oracle sweep: every scheme x policy over many fuzz seeds.

Replays seeded adversarial traces (``repro.oracle.fuzz``) through the
real FTL stack and the reference oracle simultaneously and fails the
moment any combination diverges — on logical state, counters, the
program/erase conservation laws, or a structural invariant.  This is
the refactor safety net: run it before and after any change to the
mapping/GC/dedup layers.

Exit status: 0 = all combinations agree on all seeds, 1 = at least one
divergence (each is printed with scheme/policy/seed context).

Usage::

    PYTHONPATH=src python scripts/check_oracle.py                 # 100 seeds
    PYTHONPATH=src python scripts/check_oracle.py --seeds 20
    PYTHONPATH=src python scripts/check_oracle.py --schemes cagc --shrink

Also wired into pytest as the opt-in ``oracle`` marker::

    PYTHONPATH=src python -m pytest -q -m oracle
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.array import COORDINATIONS  # noqa: E402
from repro.oracle import (  # noqa: E402
    ALL_POLICIES,
    ALL_SCHEMES,
    ARRAY_DEVICE_COUNTS,
    diff_array,
    diff_array_kernels,
    diff_kernels,
    diff_trace,
    fuzz_config,
    fuzz_trace,
    make_array_divergence_predicate,
    make_divergence_predicate,
    shrink_trace,
)
from repro.obs import log  # noqa: E402
from repro.oracle.fuzz import profile_for_seed  # noqa: E402
from repro.oracle.shrink import save_regression  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    log.add_verbosity_args(parser)
    parser.add_argument("--seeds", type=int, default=100, help="fuzz seeds per combo")
    parser.add_argument("--requests", type=int, default=220, help="requests per trace")
    parser.add_argument(
        "--check-every",
        type=int,
        default=2,
        help="full-state snapshot compare cadence (1 = every request)",
    )
    parser.add_argument(
        "--schemes", nargs="+", default=list(ALL_SCHEMES), choices=ALL_SCHEMES
    )
    parser.add_argument(
        "--policies", nargs="+", default=list(ALL_POLICIES), choices=ALL_POLICIES
    )
    parser.add_argument(
        "--kernel-equivalence",
        action="store_true",
        help="diff kernel=vectorized against kernel=reference directly "
        "(bit-identity sweep) instead of against the naive oracle model",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="attach RunTelemetry to both replay paths and diff the "
        "folded latency histograms too (kernel-equivalence mode only)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="attach a DeviceMetrics (or ArrayMetrics, with --array) bundle "
        "to both replay paths and diff the request counter and latency "
        "histogram aggregates too (kernel-equivalence mode only)",
    )
    parser.add_argument(
        "--array",
        action="store_true",
        help="sweep the N-device array against per-device oracles instead: "
        "multi-tenant 'array'-profile traces, device count rotating over "
        f"{ARRAY_DEVICE_COUNTS}, every GC coordination policy",
    )
    parser.add_argument(
        "--shrink",
        action="store_true",
        help="delta-debug each diverging trace and save it under tests/regress/",
    )
    parser.add_argument("--regress-dir", default="tests/regress")
    args = parser.parse_args(argv)
    log.setup_from_args(args)

    config = fuzz_config()
    start = time.time()
    runs = 0
    failures = 0
    for seed in range(args.seeds):
        if args.array:
            trace = fuzz_trace(
                seed, config, n_requests=args.requests, profile="array"
            )
            devices = ARRAY_DEVICE_COUNTS[seed % len(ARRAY_DEVICE_COUNTS)]
            log.debug(
                "seed %d (array, %d devices): %d requests",
                seed,
                devices,
                len(trace),
            )
            # With --kernel-equivalence the array sweep diffs the epoch
            # kernel against the reference array loop instead of the
            # naive oracle; rotate the NCQ depth so both the analytic
            # occupancy counters and the scalar admission-gate replay
            # get exercised.
            ncq_depth = (2, 4, 8, 32)[seed % 4]
            for scheme in args.schemes:
                for policy in args.policies:
                    for coordination in COORDINATIONS:
                        runs += 1
                        if args.kernel_equivalence:
                            divergence = diff_array_kernels(
                                trace,
                                devices=devices,
                                scheme=scheme,
                                policy=policy,
                                config=config,
                                coordination=coordination,
                                ncq_depth=ncq_depth,
                                metrics=args.metrics,
                            )
                        else:
                            divergence = diff_array(
                                trace,
                                devices=devices,
                                scheme=scheme,
                                policy=policy,
                                config=config,
                                coordination=coordination,
                            )
                        if divergence is None:
                            continue
                        failures += 1
                        log.error(
                            "seed %d (array, %d devices): %s",
                            seed,
                            devices,
                            divergence,
                        )
                        if args.shrink:
                            predicate = make_array_divergence_predicate(
                                devices=devices,
                                scheme=scheme,
                                policy=policy,
                                config=config,
                                coordination=coordination,
                            )
                            name = (
                                f"array-s{seed}-d{devices}-{scheme}-"
                                f"{policy}-{coordination}"
                            )
                            minimal = shrink_trace(trace, predicate, name=name)
                            path = save_regression(
                                minimal, args.regress_dir, name
                            )
                            log.error(
                                "  shrunk %d -> %d requests: %s",
                                len(trace),
                                len(minimal),
                                path,
                            )
            continue
        trace = fuzz_trace(seed, config, n_requests=args.requests)
        log.debug("seed %d (%s): %d requests", seed, profile_for_seed(seed), len(trace))
        for scheme in args.schemes:
            for policy in args.policies:
                runs += 1
                if args.kernel_equivalence:
                    divergence = diff_kernels(
                        trace,
                        scheme=scheme,
                        policy=policy,
                        config=config,
                        telemetry=args.trace,
                        metrics=args.metrics,
                    )
                else:
                    divergence = diff_trace(
                        trace,
                        scheme=scheme,
                        policy=policy,
                        config=config,
                        check_every=args.check_every,
                    )
                if divergence is None:
                    continue
                failures += 1
                log.error("seed %d (%s): %s", seed, profile_for_seed(seed), divergence)
                if args.shrink:
                    if args.kernel_equivalence:
                        predicate = (
                            lambda tr, s=scheme, p=policy: diff_kernels(
                                tr,
                                scheme=s,
                                policy=p,
                                config=config,
                                telemetry=args.trace,
                                metrics=args.metrics,
                            )
                            is not None
                        )
                    else:
                        predicate = make_divergence_predicate(scheme, policy, config)
                    minimal = shrink_trace(
                        trace,
                        predicate,
                        name=f"fuzz-s{seed}-{scheme}-{policy}",
                    )
                    path = save_regression(
                        minimal, args.regress_dir, f"fuzz-s{seed}-{scheme}-{policy}"
                    )
                    log.error(
                        "  shrunk %d -> %d requests: %s", len(trace), len(minimal), path
                    )
    wall = time.time() - start
    combos = len(args.schemes) * len(args.policies)
    if args.array:
        combos *= len(COORDINATIONS)
    log.info(
        "oracle sweep: %d seeds x %d scheme/policy combos = "
        "%d differential runs, %d divergences (%.1fs)",
        args.seeds,
        combos,
        runs,
        failures,
        wall,
    )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
