#!/usr/bin/env python
"""Fail if the simulator hot loop regressed vs the committed snapshot.

Takes a fresh throughput snapshot (same cases as
``tools/bench_snapshot.py``) and compares it against the committed
``BENCH_throughput.json`` baseline.  A case regresses when its fresh
**best-of-rounds** us/op exceeds the baseline *median* by more than the
threshold (default 25%).  Comparing fresh-min against baseline-median is
deliberate: min-of-rounds is robust to load spikes on shared CI boxes,
so the guard only trips on real slowdowns, not noisy neighbours.

Exit status: 0 = no regression, 1 = regression, 2 = snapshots
incomparable (schema mismatch or missing baseline).

Usage::

    PYTHONPATH=src python scripts/check_bench_regression.py
    PYTHONPATH=src python scripts/check_bench_regression.py --threshold 0.10 --rounds 7

Also wired into pytest as the opt-in ``benchguard`` marker::

    pytest -m benchguard
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "tools"))

from bench_snapshot import (  # noqa: E402
    SNAPSHOT_SCHEMA,
    take_snapshot,
)

DEFAULT_BASELINE = REPO_ROOT / "BENCH_throughput.json"
DEFAULT_THRESHOLD = 0.25


def _fresh_best_us_per_op(case: Dict[str, float]) -> float:
    # Schema 2 records the op count per case (cases run at different
    # geometries replay different trace lengths).
    return case["min_wall_s"] * 1e6 / case["ops"]


def compare(
    baseline: dict, fresh: dict, threshold: float = DEFAULT_THRESHOLD
) -> List[Tuple[str, float, float, float]]:
    """Regressed cases as ``(name, baseline_us, fresh_us, ratio)``.

    Raises ``ValueError`` when the snapshots are incomparable.
    """
    if baseline.get("schema") != fresh.get("schema"):
        raise ValueError(
            f"snapshot schema mismatch: baseline {baseline.get('schema')!r} "
            f"vs fresh {fresh.get('schema')!r} — regenerate the baseline with "
            f"tools/bench_snapshot.py"
        )
    regressions = []
    for name, case in fresh["replay"].items():
        base_case = baseline["replay"].get(name)
        if base_case is None:
            continue  # new case: nothing to regress against
        base_us = base_case["median_us_per_op"]
        fresh_us = _fresh_best_us_per_op(case)
        if fresh_us > base_us * (1.0 + threshold):
            regressions.append((f"replay/{name}", base_us, fresh_us, fresh_us / base_us))
    base_gen = baseline.get("trace_generation")
    if base_gen is not None:
        base_us = base_gen["median_us_per_op"]
        fresh_us = _fresh_best_us_per_op(fresh["trace_generation"])
        if fresh_us > base_us * (1.0 + threshold):
            regressions.append(("trace_generation", base_us, fresh_us, fresh_us / base_us))
    return regressions


def _merge_best(into: dict, fresh: dict) -> dict:
    """Keep the fastest observation per case across snapshot attempts."""
    for name, case in fresh["replay"].items():
        best = into["replay"].setdefault(name, case)
        if case["min_wall_s"] < best["min_wall_s"]:
            into["replay"][name] = case
    if fresh["trace_generation"]["min_wall_s"] < into["trace_generation"]["min_wall_s"]:
        into["trace_generation"] = fresh["trace_generation"]
    return into


def run_check(
    baseline_path: Path = DEFAULT_BASELINE,
    threshold: float = DEFAULT_THRESHOLD,
    rounds: int = 5,
    attempts: int = 2,
    out=sys.stdout,
) -> int:
    try:
        baseline = json.loads(baseline_path.read_text())
    except OSError as exc:
        print(f"cannot read baseline snapshot {baseline_path}: {exc}", file=out)
        return 2
    # A transient load spike can slow every round of one attempt, so a
    # seemingly-regressed case earns a re-measurement: only a slowdown
    # that survives `attempts` independent snapshots fails the check.
    fresh = take_snapshot(rounds=rounds)
    try:
        regressions = compare(baseline, fresh, threshold)
        for _ in range(attempts - 1):
            if not regressions:
                break
            fresh = _merge_best(fresh, take_snapshot(rounds=rounds))
            regressions = compare(baseline, fresh, threshold)
    except ValueError as exc:
        print(str(exc), file=out)
        return 2
    for name, case in fresh["replay"].items():
        base = baseline["replay"].get(name, {}).get("median_us_per_op")
        fresh_us = _fresh_best_us_per_op(case)
        ref = f"{base:.1f}" if base is not None else "n/a"
        print(f"{name:>16}: {fresh_us:6.1f} us/op (baseline median {ref})", file=out)
    if regressions:
        print(f"\nFAIL: regression beyond {threshold:.0%} threshold:", file=out)
        for name, base_us, fresh_us, ratio in regressions:
            print(
                f"  {name}: {base_us:.1f} -> {fresh_us:.1f} us/op ({ratio:.2f}x)",
                file=out,
            )
        return 1
    print(f"\nOK: all cases within {threshold:.0%} of the committed baseline", file=out)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", default=str(DEFAULT_BASELINE), help="committed snapshot path"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed fractional slowdown (default 0.25)",
    )
    parser.add_argument("--rounds", type=int, default=5, help="timing rounds per case")
    parser.add_argument(
        "--attempts",
        type=int,
        default=2,
        help="re-measure apparent regressions up to this many snapshots (default 2)",
    )
    args = parser.parse_args(argv)
    return run_check(Path(args.baseline), args.threshold, args.rounds, args.attempts)


if __name__ == "__main__":
    sys.exit(main())
