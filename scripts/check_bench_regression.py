#!/usr/bin/env python
"""Fail if the simulator hot loop regressed vs the committed snapshot.

Takes a fresh throughput snapshot (same cases as
``tools/bench_snapshot.py``) and compares it against the committed
``BENCH_throughput.json`` baseline.  A case regresses when its fresh
**best-of-rounds** us/op exceeds the baseline *median* by more than the
threshold (default 25%), or when its per-case ``peak_rss_mb`` (measured
in an isolated child interpreter) exceeds the baseline's by more than
the RSS threshold (default 35%).  Comparing fresh-min against
baseline-median is deliberate: min-of-rounds is robust to load spikes
on shared CI boxes, so the guard only trips on real slowdowns, not
noisy neighbours.

Exit status: 0 = no regression, 1 = regression, 2 = snapshots
incomparable (schema mismatch or missing baseline).

Usage::

    PYTHONPATH=src python scripts/check_bench_regression.py
    PYTHONPATH=src python scripts/check_bench_regression.py --threshold 0.10 --rounds 7
    PYTHONPATH=src python scripts/check_bench_regression.py --cases baseline@64x,cagc@64x

Also wired into pytest as the opt-in ``benchguard`` marker::

    pytest -m benchguard
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "tools"))

from bench_snapshot import (  # noqa: E402
    SNAPSHOT_SCHEMA,
    take_snapshot,
)

DEFAULT_BASELINE = REPO_ROOT / "BENCH_throughput.json"
DEFAULT_THRESHOLD = 0.25
#: Memory gate: per-case peak RSS is measured in a fresh child
#: interpreter, so run-to-run noise is small (allocator arena rounding,
#: import-order effects) — but a columnar store silently reverting to
#: boxed dicts is a >2x jump, far beyond this allowance.
DEFAULT_RSS_THRESHOLD = 0.35


def _fresh_best_us_per_op(case: Dict[str, float]) -> float:
    # Schema >=2 records the op count per case (cases run at different
    # geometries replay different trace lengths).
    return case["min_wall_s"] * 1e6 / case["ops"]


def _baseline_gate_us_per_op(case: Dict[str, float]) -> float:
    # The @64x cases calibrate to a single repeat per round (their one
    # run already exceeds the minimum round length), so their recorded
    # median is a 2-sample statistic that inherits whatever CPU steal
    # those two rounds saw.  Gate those against the baseline's
    # best-of-rounds instead — min-vs-min is the stable comparison when
    # the median carries no averaging.
    if case.get("repeats", 0) <= 1 and "min_wall_s" in case:
        return case["min_wall_s"] * 1e6 / case["ops"]
    return case["median_us_per_op"]


def compare(
    baseline: dict,
    fresh: dict,
    threshold: float = DEFAULT_THRESHOLD,
    rss_threshold: float = DEFAULT_RSS_THRESHOLD,
) -> List[Tuple[str, float, float, float]]:
    """Regressed cases as ``(name, baseline_val, fresh_val, ratio)``.

    Timing rows are us/op; RSS rows are MB and carry an ``[rss]``
    suffix on the name.  Raises ``ValueError`` when the snapshots are
    incomparable.
    """
    if baseline.get("schema") != fresh.get("schema"):
        raise ValueError(
            f"snapshot schema mismatch: baseline {baseline.get('schema')!r} "
            f"vs fresh {fresh.get('schema')!r} — regenerate the baseline with "
            f"tools/bench_snapshot.py"
        )
    regressions = []
    for name, case in fresh["replay"].items():
        base_case = baseline["replay"].get(name)
        if base_case is None:
            continue  # new case: nothing to regress against
        base_us = _baseline_gate_us_per_op(base_case)
        fresh_us = _fresh_best_us_per_op(case)
        if fresh_us > base_us * (1.0 + threshold):
            regressions.append((f"replay/{name}", base_us, fresh_us, fresh_us / base_us))
        base_rss = base_case.get("peak_rss_mb")
        fresh_rss = case.get("peak_rss_mb")
        # Only gate RSS when both snapshots measured it per-case
        # (isolated children); in-process snapshots report cumulative
        # high-water marks that are not comparable.
        if (
            base_rss is not None
            and fresh_rss is not None
            and fresh.get("isolated", False)
            and fresh_rss > base_rss * (1.0 + rss_threshold)
        ):
            regressions.append(
                (f"replay/{name}[rss]", base_rss, fresh_rss, fresh_rss / base_rss)
            )
    base_gen = baseline.get("trace_generation")
    fresh_gen = fresh.get("trace_generation")
    if base_gen is not None and fresh_gen is not None:
        base_us = base_gen["median_us_per_op"]
        fresh_us = _fresh_best_us_per_op(fresh_gen)
        if fresh_us > base_us * (1.0 + threshold):
            regressions.append(("trace_generation", base_us, fresh_us, fresh_us / base_us))
    return regressions


def _merge_best(into: dict, fresh: dict) -> dict:
    """Keep the fastest (and leanest) observation per case across
    snapshot attempts."""
    for name, case in fresh["replay"].items():
        best = into["replay"].setdefault(name, case)
        if case["min_wall_s"] < best["min_wall_s"]:
            rss = min(
                case.get("peak_rss_mb", float("inf")),
                best.get("peak_rss_mb", float("inf")),
            )
            into["replay"][name] = case
            if rss != float("inf"):
                case["peak_rss_mb"] = rss
        elif "peak_rss_mb" in case and "peak_rss_mb" in best:
            best["peak_rss_mb"] = min(best["peak_rss_mb"], case["peak_rss_mb"])
    fresh_gen = fresh.get("trace_generation")
    into_gen = into.get("trace_generation")
    if fresh_gen is not None and (
        into_gen is None or fresh_gen["min_wall_s"] < into_gen["min_wall_s"]
    ):
        into["trace_generation"] = fresh_gen
    return into


def timing_noise_floor(
    rounds: int = 5, cases: Sequence[str] = ("baseline",)
) -> float:
    """Smallest relative slowdown a timing gate can resolve right now.

    Takes two back-to-back snapshots of the same (cheap) cases and
    returns the worst relative disagreement between their
    best-of-rounds timings.  Identical code on an idle machine lands
    well under 1%; CPU steal, thermal throttling or a busy co-tenant
    push it past that.  A gate with a threshold below this floor cannot
    distinguish a regression from scheduler weather — callers with
    tight bars (the 2% disabled-instrumentation guard) should measure
    the floor first and decline to gate when it exceeds their
    threshold, rather than fail on noise.
    """
    first = take_snapshot(rounds=rounds, cases=list(cases))
    second = take_snapshot(rounds=rounds, cases=list(cases))
    worst = 0.0
    for name, case in first["replay"].items():
        other = second["replay"].get(name)
        if other is None:
            continue
        a = _fresh_best_us_per_op(case)
        b = _fresh_best_us_per_op(other)
        worst = max(worst, abs(a - b) / min(a, b))
    return worst


def run_check(
    baseline_path: Path = DEFAULT_BASELINE,
    threshold: float = DEFAULT_THRESHOLD,
    rounds: int = 5,
    attempts: int = 2,
    rss_threshold: float = DEFAULT_RSS_THRESHOLD,
    cases: Optional[Sequence[str]] = None,
    out=sys.stdout,
) -> int:
    try:
        baseline = json.loads(baseline_path.read_text())
    except OSError as exc:
        print(f"cannot read baseline snapshot {baseline_path}: {exc}", file=out)
        return 2
    # A transient load spike can slow every round of one attempt, so a
    # seemingly-regressed case earns a re-measurement: only a slowdown
    # that survives `attempts` independent snapshots fails the check.
    fresh = take_snapshot(rounds=rounds, cases=cases)
    try:
        regressions = compare(baseline, fresh, threshold, rss_threshold)
        for _ in range(attempts - 1):
            if not regressions:
                break
            fresh = _merge_best(fresh, take_snapshot(rounds=rounds, cases=cases))
            regressions = compare(baseline, fresh, threshold, rss_threshold)
    except ValueError as exc:
        print(str(exc), file=out)
        return 2
    for name, case in fresh["replay"].items():
        base = baseline["replay"].get(name, {})
        base_us = _baseline_gate_us_per_op(base) if base else None
        fresh_us = _fresh_best_us_per_op(case)
        ref = f"{base_us:.1f}" if base_us is not None else "n/a"
        rss = case.get("peak_rss_mb")
        rss_col = f"  rss {rss:7.1f} MB" if rss is not None else ""
        print(
            f"{name:>16}: {fresh_us:6.1f} us/op (baseline median {ref}){rss_col}",
            file=out,
        )
    if regressions:
        print(f"\nFAIL: regression beyond the allowed threshold:", file=out)
        for name, base_val, fresh_val, ratio in regressions:
            unit = "MB" if name.endswith("[rss]") else "us/op"
            print(
                f"  {name}: {base_val:.1f} -> {fresh_val:.1f} {unit} ({ratio:.2f}x)",
                file=out,
            )
        return 1
    print(
        f"\nOK: all cases within {threshold:.0%} (time) / "
        f"{rss_threshold:.0%} (rss) of the committed baseline",
        file=out,
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", default=str(DEFAULT_BASELINE), help="committed snapshot path"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed fractional slowdown (default 0.25)",
    )
    parser.add_argument(
        "--rss-threshold",
        type=float,
        default=DEFAULT_RSS_THRESHOLD,
        help="allowed fractional peak-RSS growth per case (default 0.35)",
    )
    parser.add_argument(
        "--cases",
        default=None,
        help="comma-separated case filter (default: all snapshot cases)",
    )
    parser.add_argument("--rounds", type=int, default=5, help="timing rounds per case")
    parser.add_argument(
        "--attempts",
        type=int,
        default=2,
        help="re-measure apparent regressions up to this many snapshots (default 2)",
    )
    args = parser.parse_args(argv)
    cases = args.cases.split(",") if args.cases else None
    return run_check(
        Path(args.baseline),
        args.threshold,
        args.rounds,
        args.attempts,
        rss_threshold=args.rss_threshold,
        cases=cases,
    )


if __name__ == "__main__":
    sys.exit(main())
