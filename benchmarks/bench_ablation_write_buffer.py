"""A7 — DRAM write-buffer sweep in front of CAGC."""


def test_ablation_write_buffer(experiment):
    report = experiment("ablation-write-buffer")
    data = report.data
    # flash write traffic is monotone non-increasing in buffer size
    sizes = sorted(data)
    programmed = [data[s]["pages_programmed"] for s in sizes]
    assert all(b <= a for a, b in zip(programmed, programmed[1:]))
    # a large buffer absorbs a visible share of the write traffic
    assert data[sizes[-1]]["absorption"] > 0.05
    # fewer flash writes -> no more erases than the bufferless run
    assert data[sizes[-1]]["blocks_erased"] <= data[0]["blocks_erased"]
