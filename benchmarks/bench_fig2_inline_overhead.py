"""Fig 2 — inline dedup degrades a GC-quiet ULL SSD.

Shape: Inline-Dedupe's normalized response is > 1 on every workload,
worst on the lowest-dedup workload (Homes), mildest on Mail.
"""


def test_fig2_inline_dedup_overhead(experiment):
    report = experiment("fig2")
    data = report.data
    for workload in ("homes", "webmail", "mail"):
        assert data[workload]["normalized"] > 1.1, workload
        # the motivation experiment runs GC-quiet by construction
        assert data[workload]["gc_bursts_baseline"] == 0
    # overhead ordering follows (inverse) dedup ratio
    assert data["homes"]["normalized"] >= data["webmail"]["normalized"]
    assert data["webmail"]["normalized"] >= data["mail"]["normalized"] - 0.05
    assert data["max_increase_pct"] > 40.0
