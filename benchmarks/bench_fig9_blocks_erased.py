"""Fig 9 — flash blocks erased, Baseline vs CAGC.

Shape assertions: CAGC erases fewer blocks on every workload and the
reduction grows with the workload's dedup ratio (Homes < Web-vm < Mail),
the ordering of the paper's 23.3 % / 48.3 % / 86.6 %.
"""


def test_fig9_blocks_erased(experiment):
    report = experiment("fig9")
    data = report.data
    for workload in ("homes", "web-vm", "mail"):
        assert data[workload]["cagc"] < data[workload]["baseline"], workload
        assert data[workload]["reduction_pct"] > 10.0, workload
    assert (
        data["homes"]["reduction_pct"]
        <= data["web-vm"]["reduction_pct"] + 3.0
        <= data["mail"]["reduction_pct"] + 6.0
    )
    assert data["mail"]["reduction_pct"] > data["homes"]["reduction_pct"]
