"""Benchmark-suite helpers.

Each benchmark regenerates one paper table/figure at the ``bench``
scale, prints the paper-vs-measured report, and asserts the *shape* of
the result (who wins, ordering, rough factors).  Timings reported by
pytest-benchmark measure the full experiment (trace generation +
simulation); experiments sharing memoized runs (figs 9-12) are cheap
after the first.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_experiment


@pytest.fixture
def experiment(benchmark):
    """Run an experiment once under the benchmark timer and print it."""

    def runner(experiment_id: str, scale: str = "bench"):
        report = benchmark.pedantic(
            run_experiment, args=(experiment_id,), kwargs={"scale": scale},
            rounds=1, iterations=1,
        )
        print()
        print(report)
        return report

    return runner
