"""Fig 12 — response-time CDFs: CAGC stochastically dominates Baseline."""


def test_fig12_latency_cdf(experiment):
    report = experiment("fig12")
    for workload in ("homes", "web-vm", "mail"):
        row = report.data[workload]
        # CAGC's CDF sits at or above Baseline's on (almost) all of the
        # evaluation grid
        assert row["dominance_fraction"] >= 0.9, workload
        # tail quantiles shrink
        assert (
            row["cagc_percentiles_us"]["p99"] <= row["baseline_percentiles_us"]["p99"]
        ), workload
        assert (
            row["cagc_percentiles_us"]["p80"] <= row["baseline_percentiles_us"]["p80"]
        ), workload
