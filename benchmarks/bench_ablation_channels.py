"""A9 — channel-count sweep on the channel-parallel controller."""


def test_ablation_channels(experiment):
    report = experiment("ablation-channels")
    data = report.data
    counts = sorted(data)
    means = [data[c]["mean_us"] for c in counts]
    # queueing delay falls as channels multiply (monotone within noise)
    assert means[-1] < means[0]
    assert all(b <= a * 1.15 for a, b in zip(means, means[1:]))
