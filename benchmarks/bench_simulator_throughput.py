"""Micro-benchmark: simulator replay throughput.

Not a paper figure — tracks the performance of the hot loop (per-page
FTL work during trace replay) so regressions in the substrate show up
in benchmark history.  The guides' rule: no optimization without
measurement.
"""

import pytest

from repro.config import small_config
from repro.device.ssd import run_trace
from repro.schemes import make_scheme
from repro.workloads.fiu import build_fiu_trace

CFG = small_config(blocks=128, pages_per_block=32)
TRACE = build_fiu_trace("mail", CFG, n_requests=5000)


@pytest.mark.parametrize("scheme_name", ["baseline", "inline-dedupe", "cagc"])
def test_replay_throughput(benchmark, scheme_name):
    def replay():
        return run_trace(make_scheme(scheme_name, CFG), TRACE)

    result = benchmark.pedantic(replay, rounds=3, iterations=1)
    assert result.latency.count == len(TRACE)


def test_trace_generation_throughput(benchmark):
    def generate():
        return build_fiu_trace("web-vm", CFG, n_requests=20_000)

    trace = benchmark.pedantic(generate, rounds=3, iterations=1)
    assert len(trace) == 20_000
