"""Fig 7 — refcount placement separates regions measurably."""


def test_fig7_placement_separation(experiment):
    report = experiment("fig7")
    hot = report.data["hot"]
    cold = report.data["cold"]
    # cold region holds the shared pages...
    assert cold["mean_refcount"] >= 2.0
    # ...hot region the singletons
    assert hot["mean_refcount"] < cold["mean_refcount"]
    # and cold blocks barely invalidate (the III-C payoff)
    assert cold["invalid_density"] < hot["invalid_density"]
