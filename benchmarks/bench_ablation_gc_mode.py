"""A5 — blocking vs semi-preemptive GC (related-work mechanism)."""


def test_ablation_gc_mode(experiment):
    report = experiment("ablation-gc-mode")
    for workload, row in report.data.items():
        # preemption shrinks the foreground tail...
        assert row["preemptive_p99_us"] < row["blocking_p99_us"], workload
        # ...without materially changing the reclamation volume
        ratio = row["preemptive_erases"] / max(row["blocking_erases"], 1)
        assert 0.7 < ratio < 1.3, workload
