"""Fig 10 — valid pages migrated during GC, Baseline vs CAGC.

Shape assertions mirror the paper's 35.1 % / 47.9 % / 85.9 % cuts:
substantial reductions everywhere, ordered by dedup ratio, with Mail
approaching its dedup ratio.
"""


def test_fig10_pages_migrated(experiment):
    report = experiment("fig10")
    data = report.data
    for workload in ("homes", "web-vm", "mail"):
        assert data[workload]["reduction_pct"] > 25.0, workload
    assert (
        data["homes"]["reduction_pct"]
        < data["web-vm"]["reduction_pct"]
        < data["mail"]["reduction_pct"]
    )
    # mail's cut should land near the paper's 85.9 %
    assert 75.0 < data["mail"]["reduction_pct"] < 97.0
    # dedup hits are what the migrations turned into
    assert data["mail"]["dedup_skipped"] > 0
