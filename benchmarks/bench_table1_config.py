"""Table I — device configuration check."""


def test_table1_configuration(experiment):
    report = experiment("table1")
    assert report.data["matches"]
