"""A1 — cold-region refcount threshold sweep (beyond the paper)."""


def test_ablation_cold_threshold(experiment):
    report = experiment("ablation-threshold")
    for threshold, row in report.data.items():
        assert row["erase_reduction_pct"] > 10.0, threshold
        assert row["migration_reduction_pct"] > 50.0, threshold
