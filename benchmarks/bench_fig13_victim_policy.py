"""Fig 13 — CAGC's win persists under every victim-selection policy."""


def test_fig13_victim_policy_sensitivity(experiment):
    report = experiment("fig13")
    data = report.data
    for workload in ("homes", "web-vm", "mail"):
        for policy in ("random", "greedy", "cost-benefit"):
            assert data["blocks_erased"][workload][policy] > 0.0, (workload, policy)
            assert data["pages_migrated"][workload][policy] > 15.0, (workload, policy)
            assert data["response"][workload][policy] > 0.0, (workload, policy)
