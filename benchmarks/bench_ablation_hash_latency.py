"""A3 — hash-latency sweep: when does inline dedup stop hurting?"""


def test_ablation_hash_latency(experiment):
    report = experiment("ablation-hash-latency")
    data = report.data
    # free hashing: schemes tie (within queueing noise)
    assert abs(data[0.0] - 1.0) < 0.1
    # overhead grows monotonically with hash latency
    latencies = sorted(data)
    normalized = [data[h] for h in latencies]
    assert all(b >= a - 0.02 for a, b in zip(normalized, normalized[1:]))
    # at the paper's 14 us SHA latency, inline dedup clearly hurts
    assert data[14.0] > 1.3
