"""Fig 11 — normalized mean response times of the three schemes.

Shape assertions: CAGC beats Baseline on every workload with the
largest cut on Mail (paper: 33.6 % / 29.6 % / 70.1 %).  Inline-Dedupe's
position versus Baseline is regime-dependent (see EXPERIMENTS.md): in
this GC-churn regime its write reduction outweighs its hash tax, so we
only assert it differs from Baseline materially.
"""


def test_fig11_response_time(experiment):
    report = experiment("fig11")
    data = report.data
    for workload in ("homes", "web-vm", "mail"):
        row = data[workload]
        assert row["cagc_mean_us"] < row["baseline_mean_us"], workload
        assert row["cagc_reduction_pct"] > 20.0, workload
    assert data["mail"]["cagc_reduction_pct"] >= max(
        data["homes"]["cagc_reduction_pct"], data["web-vm"]["cagc_reduction_pct"]
    )
