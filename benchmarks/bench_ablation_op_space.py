"""A4 — over-provisioning sensitivity of the CAGC win."""


def test_ablation_op_space(experiment):
    report = experiment("ablation-op-space")
    for op_ratio, row in report.data.items():
        assert row["cagc"] < row["baseline"], op_ratio
        assert row["erase_reduction_pct"] > 8.0, op_ratio
    # more OP relaxes GC pressure: baseline erase counts do not grow
    ops = sorted(report.data)
    baselines = [report.data[o]["baseline"] for o in ops]
    assert baselines[0] >= baselines[-1]
