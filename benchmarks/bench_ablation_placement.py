"""A2 — dedup-only CAGC vs full CAGC (hot/cold placement ablation)."""


def test_ablation_placement(experiment):
    report = experiment("ablation-placement")
    for workload, row in report.data.items():
        # GC-time dedup alone already provides the bulk of the win...
        assert row["dedup_only_migration_cut_pct"] > 25.0, workload
        # ...and adding placement keeps the result in the same band
        # (within a few points either way; see EXPERIMENTS.md).
        delta = abs(
            row["full_migration_cut_pct"] - row["dedup_only_migration_cut_pct"]
        )
        assert delta < 15.0, workload
