"""Fig 6 — invalid pages come overwhelmingly from refcount-1 pages."""


def test_fig6_refcount_invalidation_distribution(experiment):
    report = experiment("fig6")
    for workload in ("homes", "web-vm", "mail"):
        fractions = report.data[workload]
        assert fractions["1"] > 0.8, workload          # paper: >80 %
        assert fractions[">3"] < 0.05, workload        # paper: <1 %
        assert fractions["1"] >= fractions["2"] >= fractions["3"]
