"""Seed-stability of the headline reductions (Figs 9-11)."""


def test_stability_across_seeds(experiment):
    report = experiment("stability", scale="quick")
    for workload, metrics in report.data.items():
        for metric, row in metrics.items():
            assert all(r > 0.0 for r in row["per_seed"]), (workload, metric)
            assert row["mean_pct"] > 5.0, (workload, metric)
