"""A8 — hot-first victim preference on top of each base policy."""


def test_ablation_hot_victims(experiment):
    report = experiment("ablation-hot-victims")
    for policy, row in report.data.items():
        # preferring hot victims never migrates more pages
        assert row["hot_first_migrated"] <= row["plain_migrated"] * 1.1, policy
    # cost-benefit (age-weighted toward cold) gains the most
    cb = report.data["cost-benefit"]
    assert cb["hot_first_migrated"] <= cb["plain_migrated"]
