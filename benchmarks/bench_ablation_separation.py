"""A6 — LBA-based vs content-based hot/cold separation."""


def test_ablation_separation_signal(experiment):
    report = experiment("ablation-separation")
    data = report.data
    for workload, row in data.items():
        # both separations beat the plain baseline on migrations
        assert row["lba_migration_cut_pct"] > 0.0, workload
        assert row["cagc_migration_cut_pct"] > 0.0, workload
    # content locality wins where redundancy is high (mail, 89% dedup)
    assert (
        data["mail"]["cagc_migration_cut_pct"]
        > data["mail"]["lba_migration_cut_pct"] + 10.0
    )
