"""Fig 8 — the four-file worked example, exact page-write counts."""


def test_fig8_worked_example(experiment):
    report = experiment("fig8")
    trad = report.data["traditional"]
    cagc = report.data["CAGC"]
    # the paper's headline numbers: 12 vs 7 GC page writes
    assert trad["gc_page_writes"] == 12
    assert cagc["gc_page_writes"] == 7
    # CAGC stores each unique content once (A..G)
    assert cagc["physical_pages_after_gc"] == 7
    assert trad["physical_pages_after_gc"] == 12
    # deleting files 2 & 4 frees E,F,G under CAGC (B survives via refs)
    assert cagc["pages_freed_by_delete"] == 3
    assert trad["pages_freed_by_delete"] == 5
