"""Table II — synthetic workload characteristics vs the paper."""

import pytest


def test_table2_workload_characteristics(experiment):
    report = experiment("table2")
    targets = {
        "mail": (0.698, 0.893, 14.8),
        "homes": (0.805, 0.300, 13.1),
        "web-vm": (0.785, 0.493, 40.8),
    }
    for workload, (write_ratio, dedup_ratio, req_kb) in targets.items():
        measured = report.data[workload]
        assert measured["write_ratio"] == pytest.approx(write_ratio, abs=0.03)
        assert measured["dedup_ratio"] == pytest.approx(dedup_ratio, abs=0.08)
        assert measured["avg_req_kb"] == pytest.approx(req_kb, rel=0.15)
